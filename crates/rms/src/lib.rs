//! # aequus-rms
//!
//! Local resource-manager substrate: the systems Aequus integrates *into*
//! (§III). Two scheduler front ends share a common dispatch core:
//!
//! * [`slurm::SlurmScheduler`] — plugin-style integration with a periodic
//!   priority-recalculation interval (SLURM's `PriorityCalcPeriod`);
//! * [`maui::MauiScheduler`] — patched-callout integration recomputing
//!   priorities every scheduling iteration.
//!
//! Both prioritize with a [`multifactor`] linear combination of `[0, 1]`
//! factors (fairshare, age, QoS, size) and dispatch onto a virtual
//! [`nodes::NodePool`] through a pluggable [`dispatch::DispatchPolicy`]
//! (FIFO, EASY, Conservative, or SAF backfill) fed by the [`predict`]
//! runtime estimators. The fairshare factor itself comes
//! through the [`plugin::FairshareSource`] seam — either the full Aequus
//! stack (global fairshare) or the classic [`plugin::LocalFairshare`]
//! baseline it replaces.

#![warn(missing_docs)]

pub mod dispatch;
pub mod job;
pub mod maui;
pub mod multifactor;
pub mod nodes;
pub mod plugin;
pub mod predict;
pub mod scheduler;
pub mod slurm;

pub use dispatch::{
    pick_next, ConservativeBackfill, DispatchConfig, DispatchOrder, DispatchPlan, DispatchPolicy,
    EasyBackfill, FifoDispatch, PlannedStart, QueuedJob, RunningSlice, SafBackfill,
};
pub use job::{Job, JobState};
pub use maui::{MauiConfig, MauiScheduler};
pub use multifactor::{
    explain_combined, FactorConfig, FactorTerm, PriorityBreakdown, PriorityWeights,
};
pub use nodes::NodePool;
pub use plugin::{FairshareSource, LocalFairshare};
pub use predict::{MispredictPolicy, PredictionStats, PredictorKind, RuntimePredictor};
pub use scheduler::{ReprioritizePolicy, SchedulerCore, SchedulerStats, SLOWDOWN_TAU_S};
pub use slurm::{SlurmConfig, SlurmScheduler};
