//! # aequus-rms
//!
//! Local resource-manager substrate: the systems Aequus integrates *into*
//! (§III). Two scheduler front ends share a common dispatch core:
//!
//! * [`slurm::SlurmScheduler`] — plugin-style integration with a periodic
//!   priority-recalculation interval (SLURM's `PriorityCalcPeriod`);
//! * [`maui::MauiScheduler`] — patched-callout integration recomputing
//!   priorities every scheduling iteration.
//!
//! Both prioritize with a [`multifactor`] linear combination of `[0, 1]`
//! factors (fairshare, age, QoS, size) and dispatch onto a virtual
//! [`nodes::NodePool`] with EASY backfill. The fairshare factor itself comes
//! through the [`plugin::FairshareSource`] seam — either the full Aequus
//! stack (global fairshare) or the classic [`plugin::LocalFairshare`]
//! baseline it replaces.

#![warn(missing_docs)]

pub mod job;
pub mod maui;
pub mod multifactor;
pub mod nodes;
pub mod plugin;
pub mod scheduler;
pub mod slurm;

pub use job::{Job, JobState};
pub use maui::{MauiConfig, MauiScheduler};
pub use multifactor::{
    explain_combined, FactorConfig, FactorTerm, PriorityBreakdown, PriorityWeights,
};
pub use nodes::NodePool;
pub use plugin::{FairshareSource, LocalFairshare};
pub use scheduler::{ReprioritizePolicy, SchedulerCore, SchedulerStats};
pub use slurm::{SlurmConfig, SlurmScheduler};
