//! Multifactor job priority (§III-C): "Both SLURM and Maui employ a linear
//! combination of several factors to prioritize jobs, of which fairshare may
//! be one among several. Each factor is represented by a value in the \[0,1\]
//! range, and configurable weights are applied."

use crate::job::Job;
use aequus_core::GridUser;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Weights of the priority factors in the linear combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriorityWeights {
    /// Weight of the (global) fairshare factor.
    pub fairshare: f64,
    /// Weight of the job-age factor.
    pub age: f64,
    /// Weight of the Quality-of-Service factor.
    pub qos: f64,
    /// Weight of the job-size factor.
    pub size: f64,
}

impl PriorityWeights {
    /// The paper's evaluation configuration: "Fairshare is the only
    /// scheduling factor used during these tests."
    pub fn fairshare_only() -> Self {
        Self {
            fairshare: 1.0,
            age: 0.0,
            qos: 0.0,
            size: 0.0,
        }
    }

    /// A production-like mixed configuration; "other factors have a
    /// smoothing effect (with impact relative to their weight)".
    pub fn mixed() -> Self {
        Self {
            fairshare: 0.6,
            age: 0.2,
            qos: 0.1,
            size: 0.1,
        }
    }
}

impl Default for PriorityWeights {
    fn default() -> Self {
        Self::fairshare_only()
    }
}

/// Parameters turning raw job attributes into `[0, 1]` factors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorConfig {
    /// Wait time at which the age factor saturates at 1.
    pub max_age_s: f64,
    /// Core count at which the size factor saturates.
    pub max_cores: u32,
    /// Per-user QoS levels in `[0, 1]` (default 0.5 when absent).
    pub qos_levels: BTreeMap<GridUser, f64>,
}

impl Default for FactorConfig {
    fn default() -> Self {
        Self {
            max_age_s: 24.0 * 3600.0,
            max_cores: 1024,
            qos_levels: BTreeMap::new(),
        }
    }
}

impl FactorConfig {
    /// Age factor: saturating linear ramp of queue wait time.
    pub fn age_factor(&self, job: &Job, now_s: f64) -> f64 {
        (job.wait_time(now_s) / self.max_age_s).clamp(0.0, 1.0)
    }

    /// Size factor: smaller jobs rank higher (favoring backfillable work).
    pub fn size_factor(&self, job: &Job) -> f64 {
        1.0 - (job.cores as f64 / self.max_cores as f64).clamp(0.0, 1.0)
    }

    /// QoS factor for the job's grid user.
    pub fn qos_factor(&self, job: &Job) -> f64 {
        job.grid_user
            .as_ref()
            .and_then(|u| self.qos_levels.get(u).copied())
            .unwrap_or(0.5)
    }
}

/// Combine the factors linearly under the given weights.
pub fn combined_priority(
    weights: &PriorityWeights,
    fairshare: f64,
    age: f64,
    qos: f64,
    size: f64,
) -> f64 {
    debug_assert!((0.0..=1.0).contains(&fairshare), "fairshare {fairshare}");
    weights.fairshare * fairshare + weights.age * age + weights.qos * qos + weights.size * size
}

/// One factor's contribution to a combined priority: the `[0, 1]` value it
/// had at evaluation time and the weight it entered the combination with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FactorTerm {
    /// The factor value in `[0, 1]`.
    pub value: f64,
    /// The configured weight.
    pub weight: f64,
}

/// The captured decomposition of one combined priority — the RMS-side tail
/// of a decision's provenance. [`replay`](Self::replay) recombines the
/// captured terms with the same expression `combined_priority` evaluates, so
/// a faithful capture reproduces [`combined`](Self::combined) bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriorityBreakdown {
    /// The (possibly grid-global) fairshare factor and its weight.
    pub fairshare: FactorTerm,
    /// The queue-age factor and its weight.
    pub age: FactorTerm,
    /// The Quality-of-Service factor and its weight.
    pub qos: FactorTerm,
    /// The job-size factor and its weight.
    pub size: FactorTerm,
    /// The combined priority as computed at capture time.
    pub combined: f64,
}

impl PriorityBreakdown {
    /// Recombine the captured factors; bit-identical to
    /// [`combined`](Self::combined) for a faithful capture.
    pub fn replay(&self) -> f64 {
        self.fairshare.weight * self.fairshare.value
            + self.age.weight * self.age.value
            + self.qos.weight * self.qos.value
            + self.size.weight * self.size.value
    }

    /// Whether the captured decomposition still reproduces the combined
    /// priority exactly (fails on any tampered component).
    pub fn verify(&self) -> bool {
        self.replay().to_bits() == self.combined.to_bits()
    }

    /// Human-readable one-screen rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("combined priority {:?}\n", self.combined));
        for (name, t) in [
            ("fairshare", &self.fairshare),
            ("age", &self.age),
            ("qos", &self.qos),
            ("size", &self.size),
        ] {
            out.push_str(&format!(
                "  {name:<9} {:>8.5} × weight {:>5.3} = {:?}\n",
                t.value,
                t.weight,
                t.weight * t.value
            ));
        }
        out
    }
}

/// Evaluate [`combined_priority`] while capturing its full decomposition.
pub fn explain_combined(
    weights: &PriorityWeights,
    fairshare: f64,
    age: f64,
    qos: f64,
    size: f64,
) -> PriorityBreakdown {
    PriorityBreakdown {
        fairshare: FactorTerm {
            value: fairshare,
            weight: weights.fairshare,
        },
        age: FactorTerm {
            value: age,
            weight: weights.age,
        },
        qos: FactorTerm {
            value: qos,
            weight: weights.qos,
        },
        size: FactorTerm {
            value: size,
            weight: weights.size,
        },
        combined: combined_priority(weights, fairshare, age, qos, size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aequus_core::{JobId, SystemUser};

    fn job(cores: u32, submit: f64) -> Job {
        Job::new(JobId(1), SystemUser::new("u"), cores, submit, 60.0)
    }

    #[test]
    fn fairshare_only_ignores_other_factors() {
        let w = PriorityWeights::fairshare_only();
        let p1 = combined_priority(&w, 0.8, 1.0, 1.0, 1.0);
        let p2 = combined_priority(&w, 0.8, 0.0, 0.0, 0.0);
        assert_eq!(p1, p2);
        assert_eq!(p1, 0.8);
    }

    #[test]
    fn age_factor_saturates() {
        let cfg = FactorConfig {
            max_age_s: 100.0,
            ..Default::default()
        };
        let j = job(1, 0.0);
        assert_eq!(cfg.age_factor(&j, 50.0), 0.5);
        assert_eq!(cfg.age_factor(&j, 100.0), 1.0);
        assert_eq!(cfg.age_factor(&j, 1000.0), 1.0);
    }

    #[test]
    fn size_factor_favors_small_jobs() {
        let cfg = FactorConfig {
            max_cores: 100,
            ..Default::default()
        };
        assert!(cfg.size_factor(&job(1, 0.0)) > cfg.size_factor(&job(50, 0.0)));
        assert_eq!(cfg.size_factor(&job(100, 0.0)), 0.0);
    }

    #[test]
    fn qos_defaults_to_half() {
        let cfg = FactorConfig::default();
        let mut j = job(1, 0.0);
        assert_eq!(cfg.qos_factor(&j), 0.5);
        j.grid_user = Some(GridUser::new("vip"));
        assert_eq!(cfg.qos_factor(&j), 0.5);
        let mut cfg = cfg;
        cfg.qos_levels.insert(GridUser::new("vip"), 0.9);
        assert_eq!(cfg.qos_factor(&j), 0.9);
    }

    #[test]
    fn breakdown_replays_bit_for_bit() {
        let w = PriorityWeights::mixed();
        let b = explain_combined(&w, 0.123_456_789, 0.7, 0.31, 0.999);
        assert_eq!(
            b.combined,
            combined_priority(&w, 0.123_456_789, 0.7, 0.31, 0.999)
        );
        assert_eq!(b.replay().to_bits(), b.combined.to_bits());
        assert!(b.verify());
        let mut tampered = b;
        tampered.qos.value += 1e-9;
        assert!(!tampered.verify(), "any component change breaks the replay");
    }

    #[test]
    fn breakdown_render_names_every_factor() {
        let b = explain_combined(&PriorityWeights::mixed(), 0.5, 0.5, 0.5, 0.5);
        let text = b.render();
        for name in ["combined", "fairshare", "age", "qos", "size"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn smoothing_effect_of_extra_factors() {
        // §IV-A: other factors smooth fairshare fluctuation relative to their
        // weight. Two fairshare extremes move the combined priority by less
        // when age carries weight.
        let fs_only = PriorityWeights::fairshare_only();
        let mixed = PriorityWeights::mixed();
        let swing_only = combined_priority(&fs_only, 0.9, 0.5, 0.5, 0.5)
            - combined_priority(&fs_only, 0.1, 0.5, 0.5, 0.5);
        let swing_mixed = combined_priority(&mixed, 0.9, 0.5, 0.5, 0.5)
            - combined_priority(&mixed, 0.1, 0.5, 0.5, 0.5);
        assert!(swing_mixed < swing_only);
        assert!((swing_mixed - 0.6 * swing_only).abs() < 1e-12);
    }
}
