//! Shared scheduling machinery: priority queue management, pluggable
//! dispatch (see [`crate::dispatch`]), completion handling, and statistics.
//! The SLURM-like and Maui-like front ends configure this core with their
//! respective re-prioritization semantics and integration styles; the
//! dispatch order (FIFO / EASY / Conservative / SAF) and the runtime
//! predictor feeding it come from a [`DispatchConfig`].

use crate::dispatch::{DispatchConfig, DispatchPolicy, QueuedJob, RunningSlice};
use crate::job::{Job, JobState};
use crate::multifactor::{
    combined_priority, explain_combined, FactorConfig, PriorityBreakdown, PriorityWeights,
};
use crate::nodes::NodePool;
use crate::plugin::FairshareSource;
use crate::predict::{PredictionStats, RuntimePredictor};
use aequus_core::ids::{JobId, SiteId};
use aequus_core::usage::UsageRecord;
use aequus_core::{GridUser, UserId};
use aequus_telemetry::{Counter, Histogram, Telemetry};
use std::collections::BTreeMap;

/// Bounded-slowdown threshold τ, seconds: jobs shorter than this do not
/// inflate the slowdown metric (the standard guard against near-zero
/// runtimes dominating the mean).
pub const SLOWDOWN_TAU_S: f64 = 10.0;

/// Pre-registered scheduler metric handles (no-ops until wired).
#[derive(Debug, Clone, Default)]
struct SchedMetrics {
    submitted: Counter,
    started: Counter,
    completed: Counter,
    backfilled: Counter,
    reprio_passes: Counter,
    h_reprio: Histogram,
    h_dispatch: Histogram,
}

impl SchedMetrics {
    fn wire(t: &Telemetry) -> Self {
        Self {
            submitted: t.counter("aequus_rms_submitted_total"),
            started: t.counter("aequus_rms_started_total"),
            completed: t.counter("aequus_rms_completed_total"),
            backfilled: t.counter("aequus_rms_backfilled_total"),
            reprio_passes: t.counter("aequus_rms_reprio_passes_total"),
            h_reprio: t.histogram("aequus_rms_reprioritize_s"),
            h_dispatch: t.histogram("aequus_rms_dispatch_s"),
        }
    }
}

/// When pending-job priorities are recomputed — stage IV of the §IV-A-2
/// delay chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReprioritizePolicy {
    /// SLURM-style: a periodic recalculation interval.
    Interval(f64),
    /// Maui-style: every scheduling iteration.
    EveryCycle,
}

/// Aggregated scheduler statistics.
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs started.
    pub started: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs started via backfill (not at the head of the queue).
    pub backfilled: u64,
    /// Jobs killed at their requested walltime
    /// ([`crate::predict::MispredictPolicy::KillAtRequest`]).
    pub killed: u64,
    /// Total queue wait time of started jobs, seconds.
    pub total_wait_s: f64,
    /// Sum of bounded slowdowns `(wait + run) / max(run, τ)` of completed
    /// jobs, with τ = [`SLOWDOWN_TAU_S`].
    pub slowdown_sum: f64,
    /// Per-grid-user completed wall-clock·cores usage.
    pub usage_by_user: BTreeMap<GridUser, f64>,
    /// Runtime-prediction accuracy accounting (mirrors the scheduler's
    /// predictor state after every completion).
    pub prediction: PredictionStats,
}

impl SchedulerStats {
    /// Mean queue wait of started jobs.
    pub fn mean_wait_s(&self) -> f64 {
        if self.started == 0 {
            0.0
        } else {
            self.total_wait_s / self.started as f64
        }
    }

    /// Mean bounded slowdown of completed jobs (1.0 is ideal).
    pub fn mean_bounded_slowdown(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.slowdown_sum / self.completed as f64
        }
    }
}

/// A queued job with its cached priority and (when the fairshare source
/// supports interning) the stable id of its grid user, so re-prioritization
/// sweeps query priorities by index instead of cloned `GridUser` keys.
#[derive(Debug)]
struct PendingEntry {
    job: Job,
    prio: f64,
    user_id: Option<UserId>,
}

/// The common scheduler core.
#[derive(Debug)]
pub struct SchedulerCore {
    site: SiteId,
    /// The node pool jobs run on.
    pub nodes: NodePool,
    weights: PriorityWeights,
    factors: FactorConfig,
    reprio: ReprioritizePolicy,
    pending: Vec<PendingEntry>,
    running: Vec<Job>,
    last_reprio_s: f64,
    policy: Box<dyn DispatchPolicy>,
    predictor: RuntimePredictor,
    /// Statistics.
    pub stats: SchedulerStats,
    /// Telemetry handles (no-ops until wired).
    metrics: SchedMetrics,
}

impl SchedulerCore {
    /// Create a scheduler over the given node pool with the default
    /// dispatch configuration (EASY backfill over verbatim requests).
    pub fn new(
        site: SiteId,
        nodes: NodePool,
        weights: PriorityWeights,
        factors: FactorConfig,
        reprio: ReprioritizePolicy,
    ) -> Self {
        Self::with_dispatch(
            site,
            nodes,
            weights,
            factors,
            reprio,
            DispatchConfig::default(),
        )
    }

    /// Create a scheduler with an explicit dispatch configuration.
    pub fn with_dispatch(
        site: SiteId,
        nodes: NodePool,
        weights: PriorityWeights,
        factors: FactorConfig,
        reprio: ReprioritizePolicy,
        dispatch: DispatchConfig,
    ) -> Self {
        Self {
            site,
            nodes,
            weights,
            factors,
            reprio,
            pending: Vec::new(),
            running: Vec::new(),
            last_reprio_s: f64::NEG_INFINITY,
            policy: dispatch.order.build(),
            predictor: RuntimePredictor::new(dispatch.predictor, dispatch.mispredict),
            stats: SchedulerStats::default(),
            metrics: SchedMetrics::default(),
        }
    }

    /// Wire the scheduler into a telemetry registry; pass
    /// [`Telemetry::disabled`] to detach.
    pub fn set_telemetry(&mut self, t: &Telemetry) {
        self.metrics = SchedMetrics::wire(t);
        self.predictor.set_telemetry(t);
    }

    /// The active dispatch policy's label.
    pub fn dispatch_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Runtime-prediction accuracy accounting.
    pub fn prediction_stats(&self) -> &PredictionStats {
        &self.predictor.stats
    }

    /// The site this scheduler manages.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Jobs waiting in the queue.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Jobs currently executing.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Accept a job into the queue, resolving its grid identity through the
    /// fairshare source (the identity step of §III-B).
    pub fn submit(&mut self, mut job: Job, source: &mut dyn FairshareSource, now_s: f64) {
        if job.grid_user.is_none() {
            job.grid_user = source.resolve_identity(&job.system_user, now_s);
        }
        // Intern the user once at submit; every later priority query for
        // this entry is an index load on the source side.
        let user_id = job.grid_user.as_ref().and_then(|u| source.intern_user(u));
        self.stats.submitted += 1;
        self.metrics.submitted.inc();
        // New jobs get a priority immediately so they can dispatch this cycle.
        let prio = self.priority_of(&job, user_id, source, now_s);
        self.pending.push(PendingEntry { job, prio, user_id });
    }

    fn priority_of(
        &self,
        job: &Job,
        user_id: Option<UserId>,
        source: &mut dyn FairshareSource,
        now_s: f64,
    ) -> f64 {
        let fairshare = match (user_id, &job.grid_user) {
            (Some(id), _) => source.fairshare_factor_by_id(id, now_s),
            (None, Some(u)) => source.fairshare_factor(u, now_s),
            (None, None) => 0.5, // unmapped users get the neutral factor
        };
        combined_priority(
            &self.weights,
            fairshare,
            self.factors.age_factor(job, now_s),
            self.factors.qos_factor(job),
            self.factors.size_factor(job),
        )
    }

    /// Whether a re-prioritization is due at `now_s`.
    fn reprio_due(&self, now_s: f64) -> bool {
        match self.reprio {
            ReprioritizePolicy::EveryCycle => true,
            ReprioritizePolicy::Interval(dt) => now_s - self.last_reprio_s >= dt,
        }
    }

    /// Advance the scheduler to `now_s`: finish due jobs (reporting their
    /// usage), re-prioritize if due, and dispatch with EASY backfill.
    pub fn advance(&mut self, source: &mut dyn FairshareSource, now_s: f64) {
        self.nodes.advance(now_s);
        self.complete_due(source, now_s);
        if self.reprio_due(now_s) {
            let _span = self.metrics.h_reprio.start_timer();
            self.metrics.reprio_passes.inc();
            for entry in &mut self.pending {
                entry.prio = combined_priority(
                    &self.weights,
                    match (entry.user_id, &entry.job.grid_user) {
                        (Some(id), _) => source.fairshare_factor_by_id(id, now_s),
                        (None, Some(u)) => source.fairshare_factor(u, now_s),
                        (None, None) => 0.5,
                    },
                    self.factors.age_factor(&entry.job, now_s),
                    self.factors.qos_factor(&entry.job),
                    self.factors.size_factor(&entry.job),
                );
            }
            self.last_reprio_s = now_s;
        }
        self.dispatch(now_s);
    }

    fn complete_due(&mut self, source: &mut dyn FairshareSource, now_s: f64) {
        let mut i = 0;
        while i < self.running.len() {
            let end = self.running[i]
                .expected_end()
                .expect("running jobs have ends");
            if end <= now_s {
                let mut job = self.running.swap_remove(i);
                let start_s = match job.state {
                    JobState::Running { start_s } => start_s,
                    _ => unreachable!("job in running list"),
                };
                job.state = JobState::Completed {
                    start_s,
                    end_s: end,
                };
                self.nodes.release(job.cores);
                self.stats.completed += 1;
                self.metrics.completed.inc();
                let run_s = end - start_s;
                self.stats.slowdown_sum += (job.wait_time(end) + run_s) / run_s.max(SLOWDOWN_TAU_S);
                self.predictor.on_complete(&job, run_s);
                self.stats.prediction = self.predictor.stats.clone();
                if let Some(user) = &job.grid_user {
                    *self.stats.usage_by_user.entry(user.clone()).or_insert(0.0) +=
                        job.cores as f64 * job.duration_s;
                    source.report_usage(
                        UsageRecord {
                            job: job.id,
                            user: user.clone(),
                            site: self.site,
                            cores: job.cores,
                            start_s,
                            end_s: end,
                        },
                        now_s,
                    );
                }
            } else {
                i += 1;
            }
        }
    }

    /// Dispatch pending jobs in priority order through the configured
    /// [`DispatchPolicy`]: the policy sees the sorted queue with predicted
    /// runtimes and the running set with believed ends, and returns the
    /// starts (head or backfill) to apply this cycle.
    fn dispatch(&mut self, now_s: f64) {
        let _span = self.metrics.h_dispatch.start_timer();
        // Highest priority first; FIFO (submit time, id) as tie-breakers.
        self.pending.sort_by(|a, b| {
            b.prio
                .partial_cmp(&a.prio)
                .unwrap()
                .then(a.job.submit_s.partial_cmp(&b.job.submit_s).unwrap())
                .then(a.job.id.cmp(&b.job.id))
        });

        let queue: Vec<QueuedJob> = self
            .pending
            .iter()
            .map(|e| QueuedJob {
                cores: e.job.cores,
                predicted_s: self.predictor.predict(&e.job),
            })
            .collect();
        let running: Vec<RunningSlice> = self
            .running
            .iter()
            .filter_map(|j| {
                self.predictor
                    .believed_end(j, now_s)
                    .map(|end_s| RunningSlice {
                        end_s,
                        cores: j.cores,
                    })
            })
            .collect();
        let plan = self
            .policy
            .plan(now_s, self.nodes.free_cores(), &queue, &running);
        if plan.starts.is_empty() {
            return;
        }
        let started: BTreeMap<usize, bool> = plan
            .starts
            .iter()
            .map(|s| (s.queue_idx, s.backfill))
            .collect();
        let mut idx = 0usize;
        self.pending.retain_mut(|entry| {
            let i = idx;
            idx += 1;
            if let Some(&backfill) = started.get(&i) {
                assert!(
                    self.nodes.allocate(entry.job.cores),
                    "dispatch plan oversubscribed the pool"
                );
                entry.job.state = JobState::Running { start_s: now_s };
                // Record the prediction this start was made under; enforce
                // the walltime limit if the overrun policy kills.
                let (run_for_s, killed) = self.predictor.on_start(&entry.job);
                if killed {
                    self.stats.killed += 1;
                    entry.job.duration_s = run_for_s;
                }
                self.stats.started += 1;
                self.metrics.started.inc();
                self.stats.total_wait_s += entry.job.wait_time(now_s);
                if backfill {
                    self.stats.backfilled += 1;
                    self.metrics.backfilled.inc();
                }
                self.running.push(entry.job.clone());
                false
            } else {
                true
            }
        });
    }

    /// The earliest future time anything happens by itself: the next job
    /// completion (re-prioritization ticks are driven by the caller).
    pub fn next_completion(&self) -> Option<f64> {
        self.running
            .iter()
            .filter_map(Job::expected_end)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Pending jobs and their cached priorities (inspection/metrics).
    pub fn pending_jobs(&self) -> impl Iterator<Item = (&Job, f64)> {
        self.pending.iter().map(|e| (&e.job, e.prio))
    }

    /// Capture the multifactor decomposition of a pending job's priority as
    /// the next re-prioritization pass would compute it: the same factor
    /// evaluation as [`advance`](Self::advance), with every term recorded so
    /// the combined priority replays bit-for-bit.
    pub fn explain_priority(
        &self,
        id: JobId,
        source: &mut dyn FairshareSource,
        now_s: f64,
    ) -> Option<PriorityBreakdown> {
        let entry = self.pending.iter().find(|e| e.job.id == id)?;
        let fairshare = match (entry.user_id, &entry.job.grid_user) {
            (Some(uid), _) => source.fairshare_factor_by_id(uid, now_s),
            (None, Some(u)) => source.fairshare_factor(u, now_s),
            (None, None) => 0.5,
        };
        Some(explain_combined(
            &self.weights,
            fairshare,
            self.factors.age_factor(&entry.job, now_s),
            self.factors.qos_factor(&entry.job),
            self.factors.size_factor(&entry.job),
        ))
    }

    /// Running jobs (inspection/metrics).
    pub fn running_jobs(&self) -> &[Job] {
        &self.running
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::LocalFairshare;
    use aequus_core::fairshare::FairshareConfig;
    use aequus_core::policy::flat_policy;
    use aequus_core::projection::ProjectionKind;
    use aequus_core::SystemUser;

    fn source() -> LocalFairshare {
        let mut lf = LocalFairshare::new(
            flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap(),
            FairshareConfig::default(),
            ProjectionKind::Percental,
            60.0,
        );
        lf.map_identity(SystemUser::new("sysa"), GridUser::new("a"));
        lf.map_identity(SystemUser::new("sysb"), GridUser::new("b"));
        lf
    }

    fn core(cores: u32) -> SchedulerCore {
        SchedulerCore::new(
            SiteId(0),
            NodePool::new(1, cores),
            PriorityWeights::fairshare_only(),
            FactorConfig::default(),
            ReprioritizePolicy::EveryCycle,
        )
    }

    fn job(id: u64, sys: &str, cores: u32, submit: f64, dur: f64) -> Job {
        Job::new(JobId(id), SystemUser::new(sys), cores, submit, dur)
    }

    #[test]
    fn runs_and_completes_jobs() {
        let mut sched = core(2);
        let mut src = source();
        sched.submit(job(1, "sysa", 1, 0.0, 100.0), &mut src, 0.0);
        sched.advance(&mut src, 0.0);
        assert_eq!(sched.running_count(), 1);
        assert_eq!(sched.pending_count(), 0);
        sched.advance(&mut src, 100.0);
        assert_eq!(sched.running_count(), 0);
        assert_eq!(sched.stats.completed, 1);
        // Usage was reported to the fairshare source.
        assert!((src.usage().total_recorded() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn priority_order_respected() {
        let mut sched = core(1);
        let mut src = source();
        // a over-consumed: b's job must start first despite later submission.
        src.report_usage(
            UsageRecord {
                job: JobId(99),
                user: GridUser::new("a"),
                site: SiteId(0),
                cores: 1,
                start_s: 0.0,
                end_s: 1000.0,
            },
            1000.0,
        );
        sched.submit(job(1, "sysa", 1, 1000.0, 50.0), &mut src, 1000.0);
        sched.submit(job(2, "sysb", 1, 1001.0, 50.0), &mut src, 1001.0);
        sched.advance(&mut src, 1002.0);
        assert_eq!(sched.running_count(), 1);
        let running = &sched.running_jobs()[0];
        assert_eq!(running.id, JobId(2), "b runs first");
    }

    #[test]
    fn backfill_fills_gaps_without_delaying_head() {
        let mut sched = core(4);
        let mut src = source();
        // Occupy 3 cores until t=100.
        sched.submit(job(1, "sysa", 3, 0.0, 100.0), &mut src, 0.0);
        sched.advance(&mut src, 0.0);
        // Head job needs 4 cores → reserve at t=100. Short 1-core job can
        // backfill (ends at 50 < 100); long 1-core job cannot (would end at
        // 150 and eats a reserved core... 1 spare core? free at shadow =
        // 4−4=0 spare, so long job must finish before 100).
        sched.submit(job(2, "sysa", 4, 1.0, 100.0), &mut src, 1.0);
        sched.submit(job(3, "sysb", 1, 2.0, 200.0), &mut src, 2.0); // too long
        sched.submit(job(4, "sysb", 1, 3.0, 40.0), &mut src, 3.0); // fits
        sched.advance(&mut src, 5.0);
        let running_ids: Vec<JobId> = sched.running_jobs().iter().map(|j| j.id).collect();
        assert!(running_ids.contains(&JobId(4)), "short job backfilled");
        assert!(
            !running_ids.contains(&JobId(3)),
            "long job would delay head"
        );
        assert!(!running_ids.contains(&JobId(2)), "head still waiting");
        assert_eq!(sched.stats.backfilled, 1);
        // At t=100 jobs 1 and 4 are done. User b is now under-served, so job
        // 3 outranks job 2, starts on 1 core, and job 2 (4 cores) is
        // reserved behind it.
        sched.advance(&mut src, 100.0);
        let running_ids: Vec<JobId> = sched.running_jobs().iter().map(|j| j.id).collect();
        assert!(running_ids.contains(&JobId(3)));
        assert!(!running_ids.contains(&JobId(2)));
        // Once job 3 finishes at t=300, job 2 finally gets the machine.
        sched.advance(&mut src, 300.0);
        let running_ids: Vec<JobId> = sched.running_jobs().iter().map(|j| j.id).collect();
        assert!(running_ids.contains(&JobId(2)));
    }

    #[test]
    fn interval_reprioritization_caches_priorities() {
        let mut sched = SchedulerCore::new(
            SiteId(0),
            NodePool::new(1, 0), // no capacity: jobs stay pending
            PriorityWeights::fairshare_only(),
            FactorConfig::default(),
            ReprioritizePolicy::Interval(60.0),
        );
        let mut src = source();
        sched.submit(job(1, "sysa", 1, 0.0, 10.0), &mut src, 0.0);
        sched.advance(&mut src, 0.0);
        let p0 = sched.pending_jobs().next().unwrap().1;
        // New usage for a arrives, but within the interval the cached
        // priority persists.
        src.report_usage(
            UsageRecord {
                job: JobId(9),
                user: GridUser::new("a"),
                site: SiteId(0),
                cores: 1,
                start_s: 0.0,
                end_s: 500.0,
            },
            10.0,
        );
        sched.advance(&mut src, 30.0);
        let p1 = sched.pending_jobs().next().unwrap().1;
        assert_eq!(p0, p1, "stage-IV delay: stale priority inside interval");
        sched.advance(&mut src, 60.0);
        let p2 = sched.pending_jobs().next().unwrap().1;
        assert!(p2 < p1, "re-prioritized after interval");
    }

    #[test]
    fn unmapped_user_gets_neutral_priority() {
        let mut sched = core(0);
        let mut src = source();
        sched.submit(job(1, "unknown-sys", 1, 0.0, 10.0), &mut src, 0.0);
        sched.advance(&mut src, 0.0);
        let (j, p) = sched.pending_jobs().next().unwrap();
        assert!(j.grid_user.is_none());
        assert_eq!(p, 0.5);
    }

    #[test]
    fn mean_wait_accounting() {
        let mut sched = core(1);
        let mut src = source();
        sched.submit(job(1, "sysa", 1, 0.0, 100.0), &mut src, 0.0);
        sched.submit(job(2, "sysb", 1, 0.0, 10.0), &mut src, 0.0);
        sched.advance(&mut src, 0.0); // job 1 (or 2) starts, other waits
        sched.advance(&mut src, 100.0);
        sched.advance(&mut src, 200.0);
        assert_eq!(sched.stats.completed, 2);
        assert!(sched.stats.mean_wait_s() > 0.0);
    }
}
