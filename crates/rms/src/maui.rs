//! Maui-like scheduler front end (§III-A): "Maui has no inherent plug-in
//! system, and therefore the integration is done by applying patches to the
//! Maui source code. Similarly to SLURM, the local calculation of the
//! fairshare priority factor is replaced with a call to the libaequus system
//! library, and another call for supplying usage information to Aequus is
//! injected into Maui for execution when jobs are completed."
//!
//! Behavioral difference from the SLURM front end: Maui recomputes job
//! priorities on **every scheduling iteration**, so there is no stage-IV
//! re-prioritization interval — only the libaequus cache bounds freshness.

use crate::dispatch::DispatchConfig;
use crate::job::Job;
use crate::multifactor::{FactorConfig, PriorityWeights};
use crate::nodes::NodePool;
use crate::plugin::FairshareSource;
use crate::scheduler::{ReprioritizePolicy, SchedulerCore, SchedulerStats};
use aequus_core::ids::SiteId;

/// Configuration of a Maui-like scheduler instance.
#[derive(Debug, Clone, Default)]
pub struct MauiConfig {
    /// Priority factor weights.
    pub weights: PriorityWeights,
    /// Factor shaping parameters.
    pub factors: FactorConfig,
    /// Dispatch order, runtime predictor, and overrun policy.
    pub dispatch: DispatchConfig,
}

/// A Maui-like scheduler with the patched libaequus call-outs.
#[derive(Debug)]
pub struct MauiScheduler {
    core: SchedulerCore,
}

impl MauiScheduler {
    /// Create a Maui-like scheduler over the given node pool.
    pub fn new(site: SiteId, nodes: NodePool, config: MauiConfig) -> Self {
        Self {
            core: SchedulerCore::with_dispatch(
                site,
                nodes,
                config.weights,
                config.factors,
                ReprioritizePolicy::EveryCycle,
                config.dispatch,
            ),
        }
    }

    /// Submit a job.
    pub fn submit(&mut self, job: Job, source: &mut dyn FairshareSource, now_s: f64) {
        self.core.submit(job, source, now_s);
    }

    /// Run one scheduling iteration at `now_s` (priorities recomputed each
    /// call through the patched libaequus call site).
    pub fn advance(&mut self, source: &mut dyn FairshareSource, now_s: f64) {
        self.core.advance(source, now_s);
    }

    /// Scheduler statistics.
    pub fn stats(&self) -> &SchedulerStats {
        &self.core.stats
    }

    /// The underlying core.
    pub fn core(&self) -> &SchedulerCore {
        &self.core
    }

    /// Mutable access to the core.
    pub fn core_mut(&mut self) -> &mut SchedulerCore {
        &mut self.core
    }

    /// Earliest pending completion, for event scheduling.
    pub fn next_completion(&self) -> Option<f64> {
        self.core.next_completion()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::LocalFairshare;
    use aequus_core::fairshare::FairshareConfig;
    use aequus_core::policy::flat_policy;
    use aequus_core::projection::ProjectionKind;
    use aequus_core::usage::UsageRecord;
    use aequus_core::{GridUser, JobId, SystemUser};

    #[test]
    fn maui_reprioritizes_every_cycle() {
        let mut maui = MauiScheduler::new(
            SiteId(0),
            NodePool::new(1, 0), // zero capacity keeps jobs pending
            MauiConfig::default(),
        );
        let mut src = LocalFairshare::new(
            flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap(),
            FairshareConfig::default(),
            ProjectionKind::Percental,
            60.0,
        );
        src.map_identity(SystemUser::new("sa"), GridUser::new("a"));
        maui.submit(
            Job::new(JobId(1), SystemUser::new("sa"), 1, 0.0, 10.0),
            &mut src,
            0.0,
        );
        maui.advance(&mut src, 0.0);
        let p0 = maui.core().pending_jobs().next().unwrap().1;
        // Fresh usage for a shows up on the *next* iteration, no interval.
        src.report_usage(
            UsageRecord {
                job: JobId(5),
                user: GridUser::new("a"),
                site: SiteId(0),
                cores: 1,
                start_s: 0.0,
                end_s: 400.0,
            },
            1.0,
        );
        maui.advance(&mut src, 2.0);
        let p1 = maui.core().pending_jobs().next().unwrap().1;
        assert!(p1 < p0, "Maui sees new usage immediately: {p1} !< {p0}");
    }

    #[test]
    fn maui_and_slurm_share_dispatch_semantics() {
        // Same workload, same source: identical completion counts.
        type Stepper = Box<dyn FnMut(&mut LocalFairshare, f64) -> (u64, u64)>;
        let run = |mut adv: Stepper| {
            let mut src = LocalFairshare::new(
                flat_policy(&[("a", 1.0)]).unwrap(),
                FairshareConfig::default(),
                ProjectionKind::Percental,
                60.0,
            );
            src.map_identity(SystemUser::new("s"), GridUser::new("a"));
            let mut last = (0, 0);
            for step in 0..50 {
                last = adv(&mut src, step as f64 * 20.0);
            }
            last
        };
        let mut maui = MauiScheduler::new(SiteId(0), NodePool::new(2, 1), MauiConfig::default());
        let mut next_id = 0u64;
        let maui_result = run(Box::new(move |src, t| {
            if next_id < 10 {
                maui.submit(
                    Job::new(JobId(next_id), SystemUser::new("s"), 1, t, 30.0),
                    src,
                    t,
                );
                next_id += 1;
            }
            maui.advance(src, t);
            (maui.stats().submitted, maui.stats().completed)
        }));
        assert_eq!(maui_result.0, 10);
        assert_eq!(maui_result.1, 10);
    }
}
