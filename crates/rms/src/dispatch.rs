//! Pluggable dispatch policies: the decision layer that turns a
//! priority-sorted queue into job starts.
//!
//! This is the peer of the multifactor priority layer: [`crate::plugin`]
//! decides *how important* each job is, a [`DispatchPolicy`] decides *which
//! jobs start now* given that order, current free cores, and the believed
//! completion times of running work. Four policies are provided:
//!
//! * [`FifoDispatch`] — strict priority order, no backfill: the first job
//!   that does not fit blocks everything behind it.
//! * [`EasyBackfill`] — the head job that does not fit gets a reservation
//!   at its shadow time; lower-priority jobs may start only if they finish
//!   before the shadow time or fit in the spare (non-reserved) cores.
//! * [`ConservativeBackfill`] — *every* blocked job gets a reservation on
//!   an availability timeline; a candidate may start now only if doing so
//!   delays no earlier reservation. Bounded wait by construction.
//! * [`SafBackfill`] — EASY's single reservation, but backfill candidates
//!   are scanned smallest-area-first (cores × predicted runtime) instead of
//!   in priority order, packing the shadow window tighter.
//!
//! Policies are pure: they see immutable views of the queue and running
//! set and return a [`DispatchPlan`]; [`crate::scheduler::SchedulerCore`]
//! applies it. That keeps them trivially property-testable and
//! microbenchmarkable (see `backfill_sweep`).

/// A queued job as the dispatch policy sees it, in priority order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedJob {
    /// Cores requested.
    pub cores: u32,
    /// Predicted runtime, seconds (from [`crate::predict`], already clamped
    /// to the walltime request).
    pub predicted_s: f64,
}

/// A running job as the dispatch policy sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningSlice {
    /// Believed completion time, seconds.
    pub end_s: f64,
    /// Cores held.
    pub cores: u32,
}

/// One planned start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedStart {
    /// Index into the queue slice handed to [`DispatchPolicy::plan`].
    pub queue_idx: usize,
    /// Whether this start jumped a blocked higher-priority job (backfill).
    pub backfill: bool,
}

/// The outcome of one dispatch cycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DispatchPlan {
    /// Jobs to start, in start order.
    pub starts: Vec<PlannedStart>,
    /// Earliest reservation (shadow) time placed this cycle, if any.
    pub shadow_s: Option<f64>,
}

/// A dispatch-order policy over a priority-sorted queue.
pub trait DispatchPolicy: std::fmt::Debug + Send {
    /// Short policy label for stats and tables.
    fn name(&self) -> &'static str;

    /// Decide which queued jobs start at `now_s`. `queue` is sorted by
    /// descending priority; `running` lists current jobs with believed
    /// ends. Implementations must not start more cores than
    /// `free_cores` plus nothing — the plan is applied verbatim.
    fn plan(
        &self,
        now_s: f64,
        free_cores: u32,
        queue: &[QueuedJob],
        running: &[RunningSlice],
    ) -> DispatchPlan;
}

/// Index of the first queued job that fits `free_cores` right now — the
/// shared hot-path "pick next startable job" decision. O(position of the
/// first fit); sub-microsecond even at 10k-deep queues (gated in
/// `backfill_sweep --check`).
pub fn pick_next(queue: &[QueuedJob], free_cores: u32) -> Option<usize> {
    queue.iter().position(|q| q.cores <= free_cores)
}

/// Earliest time `cores` become available given current `free` cores and
/// running jobs' believed ends, plus the cores spare beyond the
/// reservation at that time. `None` when the job exceeds the machine.
fn shadow_of(cores: u32, free: u32, running: &[RunningSlice]) -> Option<(f64, u32)> {
    let mut ends: Vec<(f64, u32)> = running.iter().map(|r| (r.end_s, r.cores)).collect();
    ends.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut f = free;
    for (end, c) in ends {
        f += c;
        if f >= cores {
            return Some((end, f - cores));
        }
    }
    None
}

/// Strict priority-order dispatch: stop at the first job that does not fit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoDispatch;

impl DispatchPolicy for FifoDispatch {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn plan(
        &self,
        _now_s: f64,
        free_cores: u32,
        queue: &[QueuedJob],
        _running: &[RunningSlice],
    ) -> DispatchPlan {
        let mut plan = DispatchPlan::default();
        let mut free = free_cores;
        for (i, q) in queue.iter().enumerate() {
            if q.cores > free {
                break;
            }
            free -= q.cores;
            plan.starts.push(PlannedStart {
                queue_idx: i,
                backfill: false,
            });
        }
        plan
    }
}

/// EASY backfill: one reservation for the highest-priority blocked job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EasyBackfill;

impl DispatchPolicy for EasyBackfill {
    fn name(&self) -> &'static str {
        "easy"
    }

    fn plan(
        &self,
        now_s: f64,
        free_cores: u32,
        queue: &[QueuedJob],
        running: &[RunningSlice],
    ) -> DispatchPlan {
        let mut plan = DispatchPlan::default();
        let mut free = free_cores;
        let mut shadow: Option<(f64, u32)> = None;
        for (i, q) in queue.iter().enumerate() {
            match shadow {
                None => {
                    if q.cores <= free {
                        free -= q.cores;
                        plan.starts.push(PlannedStart {
                            queue_idx: i,
                            backfill: false,
                        });
                    } else {
                        // Pivot: reserve at its shadow time. A job wider
                        // than the whole machine yields no reservation and
                        // is skipped.
                        shadow = shadow_of(q.cores, free, running);
                        plan.shadow_s = shadow.map(|(t, _)| t);
                    }
                }
                Some((shadow_t, spare)) => {
                    if q.cores <= free && (now_s + q.predicted_s <= shadow_t || q.cores <= spare) {
                        free -= q.cores;
                        plan.starts.push(PlannedStart {
                            queue_idx: i,
                            backfill: true,
                        });
                        if q.cores > 0 && now_s + q.predicted_s > shadow_t {
                            shadow = Some((shadow_t, spare - q.cores));
                        }
                    }
                }
            }
        }
        plan
    }
}

/// SAF (smallest-area-first): EASY's pivot reservation, with backfill
/// candidates scanned in ascending area = cores × predicted runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SafBackfill;

impl DispatchPolicy for SafBackfill {
    fn name(&self) -> &'static str {
        "saf"
    }

    fn plan(
        &self,
        now_s: f64,
        free_cores: u32,
        queue: &[QueuedJob],
        running: &[RunningSlice],
    ) -> DispatchPlan {
        let mut plan = DispatchPlan::default();
        let mut free = free_cores;
        let mut shadow: Option<(f64, u32)> = None;
        let mut pivot = queue.len();
        for (i, q) in queue.iter().enumerate() {
            if q.cores <= free {
                free -= q.cores;
                plan.starts.push(PlannedStart {
                    queue_idx: i,
                    backfill: false,
                });
            } else if let Some(s) = shadow_of(q.cores, free, running) {
                shadow = Some(s);
                plan.shadow_s = Some(s.0);
                pivot = i;
                break;
            }
            // Unreservable (wider than the machine): skip, like EASY.
        }
        let Some((shadow_t, mut spare)) = shadow else {
            return plan;
        };
        // Candidates behind the pivot, smallest area first; ties keep
        // priority order.
        let mut rest: Vec<usize> = (pivot + 1..queue.len()).collect();
        rest.sort_by(|&a, &b| {
            let area_a = queue[a].cores as f64 * queue[a].predicted_s;
            let area_b = queue[b].cores as f64 * queue[b].predicted_s;
            area_a.partial_cmp(&area_b).unwrap().then(a.cmp(&b))
        });
        for i in rest {
            let q = &queue[i];
            if q.cores <= free && (now_s + q.predicted_s <= shadow_t || q.cores <= spare) {
                free -= q.cores;
                plan.starts.push(PlannedStart {
                    queue_idx: i,
                    backfill: true,
                });
                if q.cores > 0 && now_s + q.predicted_s > shadow_t {
                    spare -= q.cores;
                }
            }
        }
        plan
    }
}

/// Conservative backfill: every blocked job (up to `max_reservations`) gets
/// a reservation on an availability timeline; a job may start now only if
/// the timeline says so — which by construction delays no reservation made
/// for a higher-priority job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConservativeBackfill {
    /// Reservation-table bound: blocked jobs beyond this stop the scan
    /// (they simply wait), keeping the cycle O(n·R²) instead of O(n³).
    pub max_reservations: usize,
}

impl Default for ConservativeBackfill {
    fn default() -> Self {
        Self {
            max_reservations: 64,
        }
    }
}

impl ConservativeBackfill {
    /// Earliest start `>= now_s` at which `cores` stay available for
    /// `dur_s`, given the free level at `now_s` and the (unsorted) step
    /// `events` timeline.
    fn earliest_start(
        now_s: f64,
        cores: u32,
        dur_s: f64,
        free_now: i64,
        events: &[(f64, i64)],
    ) -> f64 {
        let mut times: Vec<f64> = events.iter().map(|e| e.0).filter(|&t| t > now_s).collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        times.dedup();
        let feasible = |start: f64| -> bool {
            let end = start + dur_s;
            let mut free = free_now
                + events
                    .iter()
                    .filter(|e| e.0 > now_s && e.0 <= start)
                    .map(|e| e.1)
                    .sum::<i64>();
            if free < cores as i64 {
                return false;
            }
            // Walk the steps inside the window; the level must never dip.
            let mut steps: Vec<(f64, i64)> = events
                .iter()
                .filter(|e| e.0 > start && e.0 < end)
                .copied()
                .collect();
            steps.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut i = 0;
            while i < steps.len() {
                let t = steps[i].0;
                while i < steps.len() && steps[i].0 == t {
                    free += steps[i].1;
                    i += 1;
                }
                if free < cores as i64 {
                    return false;
                }
            }
            true
        };
        if feasible(now_s) {
            return now_s;
        }
        for t in times {
            if feasible(t) {
                return t;
            }
        }
        // Unreachable for jobs that fit the machine: after the last event
        // everything is free. Guarded by the caller's width check.
        f64::INFINITY
    }
}

impl DispatchPolicy for ConservativeBackfill {
    fn name(&self) -> &'static str {
        "conservative"
    }

    fn plan(
        &self,
        now_s: f64,
        free_cores: u32,
        queue: &[QueuedJob],
        running: &[RunningSlice],
    ) -> DispatchPlan {
        let mut plan = DispatchPlan::default();
        let machine: u32 = free_cores + running.iter().map(|r| r.cores).sum::<u32>();
        // Step timeline: running jobs release their cores at their believed
        // ends; starts and reservations are appended as we commit them.
        let mut events: Vec<(f64, i64)> =
            running.iter().map(|r| (r.end_s, r.cores as i64)).collect();
        let mut free_now = free_cores as i64;
        let mut reservations = 0usize;
        let mut blocked_seen = false;
        for (i, q) in queue.iter().enumerate() {
            if q.cores > machine {
                continue; // never runnable; skip like EASY
            }
            let start = Self::earliest_start(now_s, q.cores, q.predicted_s, free_now, &events);
            if start <= now_s {
                plan.starts.push(PlannedStart {
                    queue_idx: i,
                    backfill: blocked_seen,
                });
                free_now -= q.cores as i64;
                events.push((now_s + q.predicted_s, q.cores as i64));
            } else {
                blocked_seen = true;
                if plan.shadow_s.is_none() {
                    plan.shadow_s = Some(start);
                }
                if reservations >= self.max_reservations {
                    break;
                }
                reservations += 1;
                events.push((start, -(q.cores as i64)));
                events.push((start + q.predicted_s, q.cores as i64));
            }
        }
        plan
    }
}

/// Dispatch-order selector, the configuration-level handle for the four
/// policies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DispatchOrder {
    /// [`FifoDispatch`].
    Fifo,
    /// [`EasyBackfill`] (the repo-wide default; with exact runtime
    /// requests this reproduces the pre-subsystem inline dispatcher
    /// decision-for-decision).
    #[default]
    Easy,
    /// [`ConservativeBackfill`] with the default reservation bound.
    Conservative,
    /// [`SafBackfill`].
    Saf,
}

impl DispatchOrder {
    /// Every selectable order, for sweeps.
    pub const ALL: [DispatchOrder; 4] = [
        DispatchOrder::Fifo,
        DispatchOrder::Easy,
        DispatchOrder::Conservative,
        DispatchOrder::Saf,
    ];

    /// Short label for tables and snapshot keys.
    pub fn name(self) -> &'static str {
        match self {
            DispatchOrder::Fifo => "fifo",
            DispatchOrder::Easy => "easy",
            DispatchOrder::Conservative => "conservative",
            DispatchOrder::Saf => "saf",
        }
    }

    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn DispatchPolicy> {
        match self {
            DispatchOrder::Fifo => Box::new(FifoDispatch),
            DispatchOrder::Easy => Box::new(EasyBackfill),
            DispatchOrder::Conservative => Box::new(ConservativeBackfill::default()),
            DispatchOrder::Saf => Box::new(SafBackfill),
        }
    }
}

/// Full dispatch-layer configuration: order, runtime estimator, and
/// walltime-overrun policy. The default reproduces the pre-subsystem
/// scheduler exactly (EASY over verbatim requests, no kills).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DispatchConfig {
    /// Queue-to-starts policy.
    pub order: DispatchOrder,
    /// Runtime estimator feeding backfill decisions.
    pub predictor: crate::predict::PredictorKind,
    /// What happens when a job outlives its walltime request.
    pub mispredict: crate::predict::MispredictPolicy,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(cores: u32, dur: f64) -> QueuedJob {
        QueuedJob {
            cores,
            predicted_s: dur,
        }
    }

    fn r(end: f64, cores: u32) -> RunningSlice {
        RunningSlice { end_s: end, cores }
    }

    #[test]
    fn fifo_stops_at_first_blocked() {
        let plan = FifoDispatch.plan(0.0, 4, &[q(2, 10.0), q(8, 10.0), q(1, 10.0)], &[]);
        assert_eq!(plan.starts.len(), 1);
        assert_eq!(plan.starts[0].queue_idx, 0);
        assert!(plan.shadow_s.is_none());
    }

    #[test]
    fn easy_backfills_under_shadow() {
        // 1 core free; 3 cores release at t=100. Pivot needs 4 → shadow 100,
        // spare 0. A 90 s single-core job fits before the shadow; a 200 s
        // one does not.
        let running = [r(100.0, 3)];
        let queue = [q(4, 50.0), q(1, 200.0), q(1, 90.0)];
        let plan = EasyBackfill.plan(0.0, 1, &queue, &running);
        assert_eq!(plan.shadow_s, Some(100.0));
        assert_eq!(plan.starts.len(), 1);
        assert_eq!(plan.starts[0].queue_idx, 2);
        assert!(plan.starts[0].backfill);
    }

    #[test]
    fn easy_skips_unrunnable_job() {
        // 2-core machine: a 4-core job can never run and must not block.
        let queue = [q(4, 10.0), q(1, 10.0)];
        let plan = EasyBackfill.plan(0.0, 2, &queue, &[]);
        assert_eq!(plan.starts.len(), 1);
        assert_eq!(plan.starts[0].queue_idx, 1);
        assert!(!plan.starts[0].backfill, "no reservation was placed");
    }

    #[test]
    fn saf_prefers_smallest_area() {
        // Shadow at 100 with spare 0; two candidates both fit the window,
        // but only one can run on the free core at a time this cycle —
        // both fit (1 core free... make free 1 so only one starts).
        let running = [r(100.0, 3)];
        // Candidate at idx 1 has area 80, idx 2 area 20: SAF starts idx 2
        // first; EASY would start idx 1 first.
        let queue = [q(4, 50.0), q(1, 80.0), q(1, 20.0)];
        let saf = SafBackfill.plan(0.0, 1, &queue, &running);
        assert_eq!(saf.starts[0].queue_idx, 2);
        let easy = EasyBackfill.plan(0.0, 1, &queue, &running);
        assert_eq!(easy.starts[0].queue_idx, 1);
    }

    #[test]
    fn conservative_reserves_every_blocked_job() {
        // 2 free cores, 2 release at t=100. Queue: 4-wide (blocked →
        // reserved at 100), 2-wide 200 s (would delay the first
        // reservation → must wait), 2-wide 50 s... also delays: the
        // reservation holds all 4 cores from t=100 for 60 s. A 2-wide 50 s
        // candidate running now on the free cores ends at 50 < 100: fine.
        let running = [r(100.0, 2)];
        let queue = [q(4, 60.0), q(2, 200.0), q(2, 50.0)];
        let plan = ConservativeBackfill::default().plan(0.0, 2, &queue, &running);
        assert_eq!(plan.shadow_s, Some(100.0));
        let started: Vec<usize> = plan.starts.iter().map(|s| s.queue_idx).collect();
        assert_eq!(started, vec![2]);
        assert!(plan.starts[0].backfill);
    }

    #[test]
    fn conservative_never_delays_earlier_reservation() {
        // Free 1, 3 release at 100. Job0 needs 4 → reserved [100, 160).
        // Job1 (1 core, 150 s) would overlap the reservation (ends 150 >
        // 100) and the reservation needs all 4 cores → job1 must be
        // reserved *after* job0, not started.
        let running = [r(100.0, 3)];
        let queue = [q(4, 60.0), q(1, 150.0)];
        let plan = ConservativeBackfill::default().plan(0.0, 1, &queue, &running);
        assert!(plan.starts.is_empty());
    }

    #[test]
    fn conservative_matches_easy_on_single_core_saturation() {
        // All 1-core jobs on a saturated 1-core machine: nobody starts
        // under any policy.
        let running = [r(50.0, 1)];
        let queue = [q(1, 10.0), q(1, 10.0)];
        for order in DispatchOrder::ALL {
            let plan = order.build().plan(0.0, 0, &queue, &running);
            assert!(plan.starts.is_empty(), "{}", order.name());
        }
    }

    #[test]
    fn pick_next_first_fit() {
        let queue = [q(8, 10.0), q(4, 10.0), q(2, 10.0)];
        assert_eq!(pick_next(&queue, 3), Some(2));
        assert_eq!(pick_next(&queue, 1), None);
    }

    #[test]
    fn order_roundtrip_and_default() {
        assert_eq!(DispatchOrder::default(), DispatchOrder::Easy);
        for order in DispatchOrder::ALL {
            assert_eq!(order.build().name(), order.name());
        }
        assert_eq!(DispatchConfig::default().order, DispatchOrder::Easy);
    }
}
