//! The virtual node pool of a cluster. The test bed hosts "40 virtual hosts
//! each" per cluster with the actual computations "replaced with idle wait
//! jobs"; what matters for scheduling is core occupancy over time, which
//! this pool tracks exactly (including the utilization integral used for
//! the 93–97% utilization measurements of §IV-A).

/// A pool of identical cores with exact busy-time accounting.
#[derive(Debug, Clone)]
pub struct NodePool {
    total_cores: u32,
    busy_cores: u32,
    /// Integral of busy cores over time (core-seconds).
    busy_integral: f64,
    last_update_s: f64,
}

impl NodePool {
    /// Create a pool of `nodes × cores_per_node` cores.
    pub fn new(nodes: u32, cores_per_node: u32) -> Self {
        Self {
            total_cores: nodes * cores_per_node,
            busy_cores: 0,
            busy_integral: 0.0,
            last_update_s: 0.0,
        }
    }

    /// Total cores in the pool.
    pub fn total_cores(&self) -> u32 {
        self.total_cores
    }

    /// Currently free cores.
    pub fn free_cores(&self) -> u32 {
        self.total_cores - self.busy_cores
    }

    /// Currently busy cores.
    pub fn busy_cores(&self) -> u32 {
        self.busy_cores
    }

    /// Advance the utilization integral to `now_s`. Must be called before
    /// any allocate/release at `now_s`.
    pub fn advance(&mut self, now_s: f64) {
        if now_s > self.last_update_s {
            self.busy_integral += self.busy_cores as f64 * (now_s - self.last_update_s);
            self.last_update_s = now_s;
        }
    }

    /// Try to allocate `cores`; returns whether the allocation succeeded.
    pub fn allocate(&mut self, cores: u32) -> bool {
        if cores <= self.free_cores() {
            self.busy_cores += cores;
            true
        } else {
            false
        }
    }

    /// Release `cores` back to the pool.
    ///
    /// # Panics
    /// Panics if releasing more cores than are busy (an accounting bug).
    pub fn release(&mut self, cores: u32) {
        assert!(
            cores <= self.busy_cores,
            "releasing {cores} cores but only {} busy",
            self.busy_cores
        );
        self.busy_cores -= cores;
    }

    /// Mean utilization over `[0, now_s]` in `[0, 1]`.
    pub fn utilization(&mut self, now_s: f64) -> f64 {
        self.advance(now_s);
        if now_s <= 0.0 || self.total_cores == 0 {
            return 0.0;
        }
        self.busy_integral / (self.total_cores as f64 * now_s)
    }

    /// Instantaneous utilization in `[0, 1]`.
    pub fn instant_utilization(&self) -> f64 {
        if self.total_cores == 0 {
            0.0
        } else {
            self.busy_cores as f64 / self.total_cores as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release() {
        let mut p = NodePool::new(4, 10);
        assert_eq!(p.total_cores(), 40);
        assert!(p.allocate(30));
        assert_eq!(p.free_cores(), 10);
        assert!(!p.allocate(11), "only 10 free");
        assert!(p.allocate(10));
        assert_eq!(p.free_cores(), 0);
        p.release(40);
        assert_eq!(p.free_cores(), 40);
    }

    #[test]
    fn utilization_integral() {
        let mut p = NodePool::new(1, 10);
        p.advance(0.0);
        p.allocate(5); // 50% busy from t=0
        p.advance(100.0);
        p.release(5); // idle from t=100
        let u = p.utilization(200.0);
        assert!((u - 0.25).abs() < 1e-12, "{u}"); // 500 core-s / 2000
    }

    #[test]
    fn instant_utilization() {
        let mut p = NodePool::new(1, 8);
        p.allocate(2);
        assert!((p.instant_utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let mut p = NodePool::new(1, 4);
        p.release(1);
    }
}
