//! The integration seam between a local resource manager and a fairshare
//! provider (§III-A).
//!
//! In SLURM the seam is a *priority plugin* plus a *job completion plugin*;
//! in Maui it is a pair of patched call sites. Both reduce to the same three
//! calls into `libaequus`, captured by [`FairshareSource`]:
//! fetch a fairshare factor, report completed usage, resolve identity.
//!
//! `AequusSite` implements the trait for the full per-site Aequus stack;
//! [`LocalFairshare`] is the baseline it replaces — the classic site-local
//! fairshare calculation that only sees local history.

use aequus_core::fairshare::{FairshareConfig, FairshareTree};
use aequus_core::policy::PolicyTree;
use aequus_core::projection::{Projection, ProjectionKind};
use aequus_core::usage::{UsageHistogram, UsageRecord};
use aequus_core::{GridUser, SystemUser, UserId};
use aequus_services::AequusSite;
use std::collections::BTreeMap;

/// What the RMS-side plugins need from a fairshare system.
pub trait FairshareSource {
    /// The fairshare priority factor (in `[0, 1]`) for a grid user.
    /// Replaces "the normal fairshare priority calculation code".
    fn fairshare_factor(&mut self, user: &GridUser, now_s: f64) -> f64;

    /// Intern a grid user into a stable dense id so repeated priority
    /// queries (reprioritization loops) can skip the keyed lookup. Sources
    /// without an interner return `None` and callers fall back to
    /// [`fairshare_factor`](Self::fairshare_factor).
    fn intern_user(&mut self, _user: &GridUser) -> Option<UserId> {
        None
    }

    /// The fairshare factor by interned id. Only called with ids this
    /// source returned from [`intern_user`](Self::intern_user); the default
    /// (for sources without an interner) is the neutral factor.
    fn fairshare_factor_by_id(&mut self, _id: UserId, _now_s: f64) -> f64 {
        0.5
    }

    /// Capture the full decision provenance behind
    /// [`fairshare_factor`](Self::fairshare_factor) for a user: policy path,
    /// decayed usage, distance terms, fairshare vector, and projection, such
    /// that replaying the capture reproduces the factor bit-for-bit. Sources
    /// that cannot explain themselves return `None` (the default).
    fn explain(&self, _user: &GridUser) -> Option<aequus_core::Explanation> {
        None
    }

    /// Supply usage information for a completed job (the SLURM job
    /// completion plugin / the Maui completion call site).
    fn report_usage(&mut self, record: UsageRecord, now_s: f64);

    /// Map a local system account to its grid identity.
    fn resolve_identity(&mut self, system: &SystemUser, now_s: f64) -> Option<GridUser>;
}

impl FairshareSource for AequusSite {
    fn fairshare_factor(&mut self, user: &GridUser, now_s: f64) -> f64 {
        self.fairshare(user, now_s)
    }

    fn intern_user(&mut self, user: &GridUser) -> Option<UserId> {
        Some(AequusSite::intern_user(self, user))
    }

    fn fairshare_factor_by_id(&mut self, id: UserId, now_s: f64) -> f64 {
        self.fairshare_by_id(id, now_s)
    }

    fn explain(&self, user: &GridUser) -> Option<aequus_core::Explanation> {
        self.fcs.explain(user)
    }

    fn report_usage(&mut self, record: UsageRecord, now_s: f64) {
        self.report_completion(record, now_s);
    }

    fn resolve_identity(&mut self, system: &SystemUser, now_s: f64) -> Option<GridUser> {
        AequusSite::resolve_identity(self, system, now_s)
    }
}

/// The pre-Aequus baseline: fairshare computed from local usage only, with
/// the same algorithm and projection but no cross-site exchange and no
/// service pipeline (values recomputed on demand).
pub struct LocalFairshare {
    policy: PolicyTree,
    config: FairshareConfig,
    projection: Box<dyn Projection>,
    usage: UsageHistogram,
    identity_map: BTreeMap<SystemUser, GridUser>,
}

impl std::fmt::Debug for LocalFairshare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalFairshare")
            .field("users", &self.policy.users().len())
            .finish()
    }
}

impl LocalFairshare {
    /// Create a local-only fairshare calculator.
    pub fn new(
        policy: PolicyTree,
        config: FairshareConfig,
        projection: ProjectionKind,
        usage_slot_s: f64,
    ) -> Self {
        Self {
            policy,
            config,
            projection: projection.build(),
            usage: UsageHistogram::new(usage_slot_s),
            identity_map: BTreeMap::new(),
        }
    }

    /// Register a system-user → grid-user mapping (local configuration).
    pub fn map_identity(&mut self, system: SystemUser, grid: GridUser) {
        self.identity_map.insert(system, grid);
    }

    /// Direct access to the accumulated local usage.
    pub fn usage(&self) -> &UsageHistogram {
        &self.usage
    }
}

impl FairshareSource for LocalFairshare {
    fn fairshare_factor(&mut self, user: &GridUser, now_s: f64) -> f64 {
        let usage = self.usage.decayed_all(now_s, self.config.decay);
        let tree = FairshareTree::compute(&self.policy, &usage, &self.config, now_s);
        self.projection
            .project(&tree)
            .get(user)
            .copied()
            .unwrap_or(0.5)
    }

    fn report_usage(&mut self, record: UsageRecord, _now_s: f64) {
        self.usage.record(&record);
    }

    fn resolve_identity(&mut self, system: &SystemUser, _now_s: f64) -> Option<GridUser> {
        self.identity_map.get(system).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aequus_core::ids::{JobId, SiteId};
    use aequus_core::policy::flat_policy;

    fn record(user: &str, start: f64, end: f64) -> UsageRecord {
        UsageRecord {
            job: JobId(0),
            user: GridUser::new(user),
            site: SiteId(0),
            cores: 1,
            start_s: start,
            end_s: end,
        }
    }

    #[test]
    fn local_fairshare_reacts_immediately() {
        let mut lf = LocalFairshare::new(
            flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap(),
            FairshareConfig::default(),
            ProjectionKind::Percental,
            60.0,
        );
        let before = lf.fairshare_factor(&GridUser::new("a"), 0.0);
        lf.report_usage(record("a", 0.0, 500.0), 500.0);
        let after = lf.fairshare_factor(&GridUser::new("a"), 500.0);
        assert!(after < before, "no pipeline delay locally");
    }

    #[test]
    fn local_identity_mapping() {
        let mut lf = LocalFairshare::new(
            flat_policy(&[("a", 1.0)]).unwrap(),
            FairshareConfig::default(),
            ProjectionKind::Percental,
            60.0,
        );
        lf.map_identity(SystemUser::new("sys1"), GridUser::new("a"));
        assert_eq!(
            lf.resolve_identity(&SystemUser::new("sys1"), 0.0),
            Some(GridUser::new("a"))
        );
        assert_eq!(lf.resolve_identity(&SystemUser::new("sys2"), 0.0), None);
    }

    #[test]
    fn local_sees_only_local_history() {
        // Two independent LocalFairshare instances never influence each
        // other — the problem Aequus solves.
        let policy = flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap();
        let mut site1 = LocalFairshare::new(
            policy.clone(),
            FairshareConfig::default(),
            ProjectionKind::Percental,
            60.0,
        );
        let mut site2 = LocalFairshare::new(
            policy,
            FairshareConfig::default(),
            ProjectionKind::Percental,
            60.0,
        );
        site1.report_usage(record("a", 0.0, 900.0), 900.0);
        let f1 = site1.fairshare_factor(&GridUser::new("a"), 900.0);
        let f2 = site2.fairshare_factor(&GridUser::new("a"), 900.0);
        assert!(f1 < f2, "site2 is oblivious to a's usage on site1");
    }
}
