//! Property-based tests of the dispatch policy suite: the EASY invariant
//! (backfilled candidates never delay the pivot's reservation), plan
//! feasibility across all four orders, and the Conservative no-starvation
//! guarantee (a full-width job bounded-waits behind a saturating stream of
//! narrow jobs that would starve it under greedy no-reservation backfill).

use aequus_core::fairshare::FairshareConfig;
use aequus_core::ids::{JobId, SiteId};
use aequus_core::policy::flat_policy;
use aequus_core::projection::ProjectionKind;
use aequus_core::{GridUser, SystemUser};
use aequus_rms::{
    ConservativeBackfill, DispatchConfig, DispatchOrder, DispatchPolicy, EasyBackfill,
    FactorConfig, Job, LocalFairshare, MispredictPolicy, NodePool, PredictorKind, PriorityWeights,
    QueuedJob, ReprioritizePolicy, RunningSlice, SchedulerCore,
};
use proptest::prelude::*;

/// Replica of the EASY shadow walk, kept in the test so a bug in the
/// production walk can't hide itself: earliest time `cores` are free given
/// `free` now and the believed ends of `running`.
fn shadow(cores: u32, free: u32, running: &[RunningSlice]) -> Option<f64> {
    if cores <= free {
        return Some(0.0);
    }
    let mut ends: Vec<(f64, u32)> = running.iter().map(|r| (r.end_s, r.cores)).collect();
    ends.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite ends"));
    let mut avail = free;
    for (end, c) in ends {
        avail += c;
        if avail >= cores {
            return Some(end);
        }
    }
    None
}

/// Random queue: (cores, predicted seconds) pairs.
fn queue_strategy() -> impl Strategy<Value = Vec<(u32, f64)>> {
    proptest::collection::vec((1u32..24, 1.0..800.0f64), 1..40)
}

/// Random running set: (remaining seconds, cores) pairs.
fn running_strategy() -> impl Strategy<Value = Vec<(f64, u32)>> {
    proptest::collection::vec((1.0..600.0f64, 1u32..8), 0..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// EASY invariant: applying every planned start (head starts and
    /// backfilled candidates alike, each becoming a running slice that
    /// holds its cores for its predicted runtime) never pushes the pivot's
    /// earliest feasible start past the reservation the plan advertised.
    #[test]
    fn easy_backfill_never_delays_the_pivot(
        q in queue_strategy(),
        r in running_strategy(),
        free in 0u32..16,
    ) {
        let queue: Vec<QueuedJob> = q
            .iter()
            .map(|&(cores, predicted_s)| QueuedJob { cores, predicted_s })
            .collect();
        let running: Vec<RunningSlice> = r
            .iter()
            .map(|&(rem, cores)| RunningSlice { end_s: rem, cores })
            .collect();
        let plan = EasyBackfill.plan(0.0, free, &queue, &running);
        let Some(reserved) = plan.shadow_s else { return Ok(()) };
        let started: Vec<usize> = plan.starts.iter().map(|s| s.queue_idx).collect();
        // The pivot: the first skipped job EASY could reserve for — judged,
        // like the policy does, against the free cores left after the head
        // starts plus the releases of the *pre-cycle* running set (jobs
        // started this cycle aren't believed-running until next cycle, so a
        // wider job can be transiently unreservable and is skipped).
        let head_cores: u32 = plan
            .starts
            .iter()
            .filter(|s| !s.backfill)
            .map(|s| queue[s.queue_idx].cores)
            .sum();
        let capacity: u32 = free - head_cores + running.iter().map(|s| s.cores).sum::<u32>();
        let pivot = queue
            .iter()
            .enumerate()
            .find(|(i, j)| !started.contains(i) && j.cores <= capacity);
        let Some((_, pivot)) = pivot else { return Ok(()) };
        // World after the plan executes: started jobs hold their cores for
        // their predicted runtimes.
        let used: u32 = started.iter().map(|&i| queue[i].cores).sum();
        prop_assert!(used <= free, "plan oversubscribed: {used} > {free}");
        let mut after: Vec<RunningSlice> = running.clone();
        after.extend(started.iter().map(|&i| RunningSlice {
            end_s: queue[i].predicted_s,
            cores: queue[i].cores,
        }));
        let shadow_after = shadow(pivot.cores, free - used, &after)
            .expect("pivot stays runnable after the plan");
        prop_assert!(
            shadow_after <= reserved + 1e-9,
            "pivot reservation delayed: {shadow_after} > {reserved}\nfree={free} queue={queue:?}\nrunning={running:?}\nplan={plan:?}"
        );
    }

    /// Every policy's plan is feasible (started cores fit the free pool,
    /// no index out of range or started twice) and deterministic.
    #[test]
    fn every_plan_is_feasible_and_deterministic(
        q in queue_strategy(),
        r in running_strategy(),
        free in 0u32..16,
    ) {
        let queue: Vec<QueuedJob> = q
            .iter()
            .map(|&(cores, predicted_s)| QueuedJob { cores, predicted_s })
            .collect();
        let running: Vec<RunningSlice> = r
            .iter()
            .map(|&(rem, cores)| RunningSlice { end_s: rem, cores })
            .collect();
        for order in DispatchOrder::ALL {
            let policy = order.build();
            let plan = policy.plan(0.0, free, &queue, &running);
            let mut seen = std::collections::BTreeSet::new();
            let mut used = 0u32;
            for s in &plan.starts {
                prop_assert!(s.queue_idx < queue.len(), "{}: index range", order.name());
                prop_assert!(seen.insert(s.queue_idx), "{}: started twice", order.name());
                used += queue[s.queue_idx].cores;
            }
            prop_assert!(used <= free, "{}: oversubscribed {used} > {free}", order.name());
            let replay = policy.plan(0.0, free, &queue, &running);
            prop_assert_eq!(
                plan.starts.len(),
                replay.starts.len(),
                "{}: non-deterministic",
                order.name()
            );
        }
    }

    /// Conservative no-starvation: one full-width job behind an endless
    /// stream of narrow jobs. A greedy no-reservation dispatcher would
    /// never drain the pool; the per-job reservation must start the wide
    /// job within the first narrow generation's lifetime.
    #[test]
    fn conservative_wide_job_waits_boundedly(
        arrival_s in 4.0..20.0f64,
        narrow_s in 20.0..90.0f64,
        per_batch in 1usize..4,
    ) {
        const CORES: u32 = 8;
        let mut sched = SchedulerCore::with_dispatch(
            SiteId(0),
            NodePool::new(1, CORES),
            PriorityWeights::fairshare_only(),
            FactorConfig::default(),
            ReprioritizePolicy::EveryCycle,
            DispatchConfig {
                order: DispatchOrder::Conservative,
                predictor: PredictorKind::Request,
                mispredict: MispredictPolicy::Extend,
            },
        );
        let mut src = LocalFairshare::new(
            flat_policy(&[("a", 1.0)]).unwrap(),
            FairshareConfig::default(),
            ProjectionKind::Percental,
            60.0,
        );
        src.map_identity(SystemUser::new("sys-a"), GridUser::new("a"));
        // Same user throughout: every job carries the same priority, so
        // queue order is pure submit order and the wide job stays ahead of
        // every narrow job submitted after it.
        let mut next_id = 1u64;
        // Saturate the pool, then put the wide job behind the full machine.
        for _ in 0..CORES {
            sched.submit(
                Job::new(JobId(next_id), SystemUser::new("sys-a"), 1, 0.0, narrow_s),
                &mut src,
                0.0,
            );
            next_id += 1;
        }
        sched.advance(&mut src, 0.0);
        prop_assert_eq!(sched.running_count(), CORES as usize);
        let wide = JobId(0);
        sched.submit(
            Job::new(wide, SystemUser::new("sys-a"), CORES, 1.0, 50.0),
            &mut src,
            1.0,
        );
        let mut next_arrival = arrival_s;
        let mut t = 1.0;
        let mut wide_started = None;
        while t < 2_000.0 {
            while next_arrival <= t {
                for _ in 0..per_batch {
                    sched.submit(
                        Job::new(JobId(next_id), SystemUser::new("sys-a"), 1, t, narrow_s),
                        &mut src,
                        t,
                    );
                    next_id += 1;
                }
                next_arrival += arrival_s;
            }
            sched.advance(&mut src, t);
            if wide_started.is_none() && sched.running_jobs().iter().any(|j| j.id == wide) {
                wide_started = Some(t);
                break;
            }
            t += 2.0;
        }
        // Bounded wait: the reservation lands at the last end among the
        // narrow jobs running when the wide job arrived — one narrow
        // lifetime, plus advance-step quantization. A greedy
        // no-reservation dispatcher would keep refilling freed cores from
        // the narrow stream and never start the wide job at all.
        let bound = narrow_s + 6.0;
        prop_assert!(
            wide_started.is_some_and(|s| s <= bound),
            "wide job start {wide_started:?} not within {bound}"
        );
    }

    /// Whole-workload no-starvation across every order: a finite random
    /// workload always drains — every submitted job eventually completes.
    #[test]
    fn every_order_drains_finite_workloads(
        jobs in proptest::collection::vec((0.0..1000.0f64, 1.0..300.0f64, 1u32..9), 1..40),
    ) {
        for order in DispatchOrder::ALL {
            let mut sched = SchedulerCore::with_dispatch(
                SiteId(0),
                NodePool::new(2, 4),
                PriorityWeights::fairshare_only(),
                FactorConfig::default(),
                ReprioritizePolicy::Interval(30.0),
                DispatchConfig {
                    order,
                    ..DispatchConfig::default()
                },
            );
            let mut src = LocalFairshare::new(
                flat_policy(&[("a", 1.0)]).unwrap(),
                FairshareConfig::default(),
                ProjectionKind::Percental,
                60.0,
            );
            src.map_identity(SystemUser::new("sys-a"), GridUser::new("a"));
            let mut submits: Vec<(f64, f64, u32)> = jobs.clone();
            submits.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            let mut idx = 0;
            let mut t = 0.0;
            while t < 40_000.0 && (sched.stats.completed as usize) < submits.len() {
                while idx < submits.len() && submits[idx].0 <= t {
                    let (at, dur, cores) = submits[idx];
                    sched.submit(
                        Job::new(JobId(idx as u64), SystemUser::new("sys-a"), cores, at, dur),
                        &mut src,
                        t,
                    );
                    idx += 1;
                }
                sched.advance(&mut src, t);
                t += 10.0;
            }
            prop_assert_eq!(
                sched.stats.completed as usize,
                submits.len(),
                "{}: workload did not drain",
                order.name()
            );
        }
    }

    /// The Conservative plan itself never reserves past the shadow the
    /// queue head would get under EASY *when the head is the only blocked
    /// job* — the two policies agree on the first reservation.
    #[test]
    fn conservative_head_reservation_matches_easy_shadow(
        r in running_strategy(),
        head_cores in 1u32..24,
        free in 0u32..16,
    ) {
        let queue = [QueuedJob { cores: head_cores, predicted_s: 100.0 }];
        let running: Vec<RunningSlice> = r
            .iter()
            .map(|&(rem, cores)| RunningSlice { end_s: rem, cores })
            .collect();
        let easy = EasyBackfill.plan(0.0, free, &queue, &running);
        let conservative = ConservativeBackfill::default().plan(0.0, free, &queue, &running);
        prop_assert_eq!(
            easy.starts.len(),
            conservative.starts.len(),
            "start-now decision differs on a single-job queue"
        );
        if let (Some(a), Some(b)) = (easy.shadow_s, conservative.shadow_s) {
            prop_assert!((a - b).abs() < 1e-9, "reservations differ: {a} vs {b}");
        }
    }
}
