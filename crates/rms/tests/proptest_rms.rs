//! Property-based tests of the scheduler substrate: no core over-allocation,
//! work conservation, no job loss, backfill never delaying completion of
//! everything, and priority-factor bounds under randomized workloads.

use aequus_core::fairshare::FairshareConfig;
use aequus_core::ids::{JobId, SiteId};
use aequus_core::policy::flat_policy;
use aequus_core::projection::ProjectionKind;
use aequus_core::{GridUser, SystemUser};
use aequus_rms::{
    FactorConfig, FairshareSource, Job, LocalFairshare, NodePool, PriorityWeights,
    ReprioritizePolicy, SchedulerCore,
};
use proptest::prelude::*;

fn source() -> LocalFairshare {
    let mut lf = LocalFairshare::new(
        flat_policy(&[("a", 0.4), ("b", 0.35), ("c", 0.25)]).unwrap(),
        FairshareConfig::default(),
        ProjectionKind::Percental,
        60.0,
    );
    for u in ["a", "b", "c"] {
        lf.map_identity(SystemUser::new(format!("sys-{u}")), GridUser::new(u));
    }
    lf
}

/// (user index, submit offset, duration, cores)
fn workload() -> impl Strategy<Value = Vec<(u8, f64, f64, u32)>> {
    proptest::collection::vec((0u8..3, 0.0..2000.0f64, 1.0..400.0f64, 1u32..5), 1..50)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn never_overallocates_and_never_loses_jobs(jobs in workload(), cores in 4u32..32) {
        let mut sched = SchedulerCore::new(
            SiteId(0),
            NodePool::new(1, cores),
            PriorityWeights::fairshare_only(),
            FactorConfig::default(),
            ReprioritizePolicy::Interval(30.0),
        );
        let mut src = source();
        let mut submits: Vec<(f64, Job)> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(u, t, d, c))| {
                (
                    t,
                    Job::new(
                        JobId(i as u64),
                        SystemUser::new(format!("sys-{}", ["a", "b", "c"][u as usize])),
                        c.min(cores),
                        t,
                        d,
                    ),
                )
            })
            .collect();
        submits.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        let n = submits.len() as u64;

        let mut t = 0.0;
        let mut idx = 0;
        while t < 50_000.0 {
            while idx < submits.len() && submits[idx].0 <= t {
                sched.submit(submits[idx].1.clone(), &mut src, t);
                idx += 1;
            }
            sched.advance(&mut src, t);
            // Invariant: the pool never over-allocates.
            prop_assert!(sched.nodes.busy_cores() <= sched.nodes.total_cores());
            // Invariant: every job is in exactly one place.
            prop_assert_eq!(
                sched.stats.submitted,
                sched.pending_count() as u64
                    + sched.running_count() as u64
                    + sched.stats.completed
            );
            if sched.stats.completed == n && idx == submits.len() {
                break;
            }
            t += 10.0;
        }
        prop_assert_eq!(sched.stats.completed, n, "all jobs complete eventually");
        // Conservation: reported usage equals the submitted work.
        let expected: f64 = jobs
            .iter()
            .map(|&(_, _, d, c)| d * c.min(cores) as f64)
            .sum();
        prop_assert!(
            (src.usage().total_recorded() - expected).abs() < 1e-6 * expected.max(1.0),
            "work conserved"
        );
    }

    #[test]
    fn combined_priority_bounded(
        fs in 0.0..1.0f64,
        age in 0.0..1.0f64,
        qos in 0.0..1.0f64,
        size in 0.0..1.0f64,
        wf in 0.0..1.0f64,
        wa in 0.0..1.0f64,
        wq in 0.0..1.0f64,
        ws in 0.0..1.0f64,
    ) {
        let weights = PriorityWeights { fairshare: wf, age: wa, qos: wq, size: ws };
        let p = aequus_rms::multifactor::combined_priority(&weights, fs, age, qos, size);
        let w_total = wf + wa + wq + ws;
        prop_assert!(p >= 0.0);
        prop_assert!(p <= w_total + 1e-12, "p={p} > total weight {w_total}");
    }

    #[test]
    fn higher_fairshare_user_waits_less_under_contention(
        seed_usage in 100.0..5000.0f64,
    ) {
        // Give "a" heavy prior usage; a and b then submit identical job
        // streams to a saturated machine. With *equal policy shares*, b's
        // final fairshare factor can never drop below a's.
        let mut sched = SchedulerCore::new(
            SiteId(0),
            NodePool::new(1, 2),
            PriorityWeights::fairshare_only(),
            FactorConfig::default(),
            ReprioritizePolicy::EveryCycle,
        );
        let mut src = LocalFairshare::new(
            flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap(),
            FairshareConfig::default(),
            ProjectionKind::Percental,
            60.0,
        );
        src.map_identity(SystemUser::new("sys-a"), GridUser::new("a"));
        src.map_identity(SystemUser::new("sys-b"), GridUser::new("b"));
        src.report_usage(
            aequus_core::usage::UsageRecord {
                job: JobId(1000),
                user: GridUser::new("a"),
                site: SiteId(0),
                cores: 1,
                start_s: 0.0,
                end_s: seed_usage,
            },
            seed_usage,
        );
        for i in 0..30u64 {
            let user = if i % 2 == 0 { "sys-a" } else { "sys-b" };
            sched.submit(
                Job::new(JobId(i), SystemUser::new(user), 1, seed_usage, 100.0),
                &mut src,
                seed_usage,
            );
        }
        let mut t = seed_usage;
        let mut waits: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
        while sched.stats.completed < 30 && t < seed_usage + 100_000.0 {
            sched.advance(&mut src, t);
            t += 50.0;
        }
        // Reconstruct waits from the per-user usage order isn't possible via
        // stats; instead compare total wait via the mean-wait of runs where
        // only one user is favored. Use priority factors as the oracle:
        let fa = src.fairshare_factor(&GridUser::new("a"), t);
        let fb = src.fairshare_factor(&GridUser::new("b"), t);
        prop_assert!(fb >= fa, "b never below a after a's over-use: {fb} vs {fa}");
        waits.clear();
    }

    #[test]
    fn backfill_only_improves_throughput(jobs in workload()) {
        // The same workload with and without a wide job blocking the head:
        // dispatching must never deadlock, and all jobs complete either way.
        let run = |wide_first: bool| {
            let mut sched = SchedulerCore::new(
                SiteId(0),
                NodePool::new(1, 8),
                PriorityWeights::fairshare_only(),
                FactorConfig::default(),
                ReprioritizePolicy::Interval(60.0),
            );
            let mut src = source();
            if wide_first {
                sched.submit(
                    Job::new(JobId(9999), SystemUser::new("sys-a"), 8, 0.0, 300.0),
                    &mut src,
                    0.0,
                );
            }
            for (i, &(u, t, d, c)) in jobs.iter().enumerate() {
                sched.submit(
                    Job::new(
                        JobId(i as u64),
                        SystemUser::new(format!("sys-{}", ["a", "b", "c"][u as usize])),
                        c.min(8),
                        t,
                        d,
                    ),
                    &mut src,
                    t,
                );
            }
            let mut t = 0.0;
            let target = jobs.len() as u64 + if wide_first { 1 } else { 0 };
            while sched.stats.completed < target && t < 100_000.0 {
                t += 25.0;
                sched.advance(&mut src, t);
            }
            sched.stats.completed
        };
        let without = run(false);
        let with = run(true);
        prop_assert_eq!(without, jobs.len() as u64);
        prop_assert_eq!(with, jobs.len() as u64 + 1);
    }
}
