//! Property-based tests of the gossip wire codec: lossless round-trips for
//! arbitrary summaries under both encodings, positive-delta merge
//! idempotence under duplication / reordering / loss-with-resync, and
//! corruption detection — a flipped bit must never decode silently.
//!
//! The vendored proptest shim generates scalars and vectors of scalar
//! tuples; structured values (names, charges, summaries) are derived
//! deterministically from those scalars, so every failure reproduces from
//! the reported case seed.

use aequus_core::codec::{decode_summary, encode_summary, encoded_size, Encoding};
use aequus_core::ids::SiteId;
use aequus_core::usage::{UsageSummary, UserCells};
use aequus_core::GridUser;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A charge value mixing the integral fast path (whole core-seconds),
/// awkward fractions, tiny residues, and huge magnitudes.
fn charge_from(kind: u8, a: u64) -> f64 {
    match kind % 4 {
        0 => (a % 1_000_000) as f64,
        1 => (a % 1_000_000_000) as f64 / 1024.0 + 0.25,
        2 => [0.1, 1.0 / 3.0, 1e-12, 9e15][(a % 4) as usize],
        _ => a as f64 * 1e-3,
    }
}

/// User names spanning the front-coder's edge cases — shared prefixes of
/// different lengths, pure numeric suffixes, multi-byte UTF-8, and a small
/// pool that forces identical names (empty front-coded suffix).
fn name_from(kind: u8, n: u64) -> String {
    match kind % 4 {
        0 => format!(
            "{}{}",
            ["a", "ab", "abc", "abcd"][(n % 4) as usize],
            n % 1_000_000
        ),
        1 => format!("user{}", n % 10_000_000),
        2 => format!("ユーザ{}", n % 100),
        _ => format!("user{}", n % 8),
    }
}

type CellScalars = Vec<(u64, u8, u64)>;
type UserScalars = Vec<((u8, u64), CellScalars)>;

fn cells_from(scalars: CellScalars) -> BTreeMap<u64, f64> {
    scalars
        .into_iter()
        .map(|(slot, ck, ca)| (slot % 50_000, charge_from(ck, ca)))
        .collect()
}

fn user_cells_from(scalars: UserScalars) -> UserCells {
    let mut m = UserCells::new();
    for ((nk, nn), cells) in scalars {
        let user = GridUser::new(name_from(nk, nn));
        m.entry(user).or_default().extend(cells_from(cells));
    }
    m
}

/// Strategy: scalar raw material for one per-user cell map.
fn user_scalars(max_users: usize) -> impl Strategy<Value = UserScalars> {
    proptest::collection::vec(
        (
            (0u8..4, 0u64..1u64 << 40),
            proptest::collection::vec((0u64..50_000, 0u8..4, 0u64..1u64 << 40), 1..6),
        ),
        0..max_users,
    )
}

/// Strategy: a full summary with the publisher's own section plus relayed
/// sections whose origins are distinct from the publisher (the publisher
/// never relays itself).
fn summary() -> impl Strategy<Value = UsageSummary> {
    (
        0u32..64,
        0u64..10_000,
        0u8..3,
        user_scalars(6),
        proptest::collection::vec((64u32..96, user_scalars(4)), 0..3),
    )
        .prop_map(|(site, seq, sk, per_user, relayed)| UsageSummary {
            site: SiteId(site),
            seq,
            slot_s: [60.0, 300.0, 0.5][sk as usize],
            per_user: user_cells_from(per_user),
            relayed: relayed
                .into_iter()
                .map(|(o, scalars)| (SiteId(o), user_cells_from(scalars)))
                .collect(),
        })
}

/// The receiver's positive-delta merge against a per-origin mirror —
/// the uss merge rule, restated here as the property under test.
fn merge(
    mirrors: &mut BTreeMap<SiteId, UserCells>,
    acc: &mut BTreeMap<GridUser, BTreeMap<u64, f64>>,
    origin: SiteId,
    cells: &UserCells,
) {
    const CELL_EPS: f64 = 1e-12;
    let mirror = mirrors.entry(origin).or_default();
    for (user, slots) in cells {
        let seen = mirror.entry(user.clone()).or_default();
        for (&slot, &value) in slots {
            let prev = seen.get(&slot).copied().unwrap_or(0.0);
            if value - prev > CELL_EPS {
                seen.insert(slot, value);
                *acc.entry(user.clone())
                    .or_default()
                    .entry(slot)
                    .or_insert(0.0) += value - prev;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn round_trip_is_lossless(s in summary()) {
        for enc in [Encoding::Dense, Encoding::Delta] {
            let buf = encode_summary(&s, enc);
            prop_assert_eq!(buf.len(), encoded_size(&s, enc), "sizing must be exact");
            let (got_enc, got) = decode_summary(&buf).unwrap();
            prop_assert_eq!(got_enc, enc);
            prop_assert_eq!(&got, &s, "{:?} round trip", enc);
        }
    }

    #[test]
    fn delta_streams_merge_idempotently(
        base in user_scalars(6),
        increments in proptest::collection::vec(((0u8..4, 0u64..1000), 0u64..100, 0.5..500.0f64), 1..12),
        order in proptest::collection::vec(0usize..4096, 0..24),
        dups in proptest::collection::vec(0usize..4096, 0..8),
    ) {
        // Build a monotone publication history: each step raises one cell's
        // absolute cumulative value, publishing only the changed cell.
        let origin = SiteId(3);
        let mut truth: UserCells = user_cells_from(base);
        let mut history: Vec<UsageSummary> = Vec::new();
        for ((nk, nn), slot, inc) in increments {
            let user = GridUser::new(name_from(nk, nn));
            let cell = truth.entry(user.clone()).or_default().entry(slot).or_insert(0.0);
            *cell += inc;
            let value = *cell;
            history.push(UsageSummary {
                site: origin,
                seq: history.len() as u64 + 1,
                slot_s: 60.0,
                per_user: [(user, [(slot, value)].into_iter().collect())].into_iter().collect(),
                relayed: BTreeMap::new(),
            });
        }
        // Final cumulative snapshot — what a resync falls back to after loss.
        let snapshot = UsageSummary {
            site: origin,
            seq: history.len() as u64,
            slot_s: 60.0,
            per_user: truth.clone(),
            relayed: BTreeMap::new(),
        };
        // Deliver an arbitrary subset in arbitrary order (loss + reorder),
        // with arbitrary re-deliveries (duplication), each hop through the
        // Delta codec, then the snapshot closes every remaining gap.
        let mut mirrors = BTreeMap::new();
        let mut acc = BTreeMap::new();
        let deliveries = order
            .iter()
            .map(|&ix| &history[ix % history.len()])
            .chain(dups.iter().map(|&ix| &history[ix % history.len()]))
            .chain(std::iter::once(&snapshot))
            .chain(std::iter::once(&snapshot)); // snapshot twice: idempotent
        for s in deliveries {
            let (_, decoded) = decode_summary(&encode_summary(s, Encoding::Delta)).unwrap();
            merge(&mut mirrors, &mut acc, decoded.site, &decoded.per_user);
        }
        // The merged view equals the true cumulative values exactly once
        // (no double-counting, nothing lost). Cells already present in the
        // base start above zero: the snapshot must cover them too.
        for (user, slots) in &truth {
            for (&slot, &value) in slots {
                if value <= 1e-12 {
                    continue;
                }
                let got = acc.get(user).and_then(|m| m.get(&slot)).copied().unwrap_or(0.0);
                prop_assert!((got - value).abs() <= 1e-9 * value.abs().max(1.0),
                    "user {user:?} slot {slot}: merged {got} truth {value}");
            }
        }
    }

    #[test]
    fn single_bit_corruption_never_decodes(
        s in summary(),
        flips in proptest::collection::vec((0usize..65_536, 0u8..8), 1..16),
    ) {
        for enc in [Encoding::Dense, Encoding::Delta] {
            let buf = encode_summary(&s, enc);
            for &(ix, bit) in &flips {
                let pos = ix % buf.len();
                let mut bad = buf.clone();
                bad[pos] ^= 1 << bit;
                // CRC32 detects every single-bit error; nothing may decode.
                prop_assert!(
                    decode_summary(&bad).is_err(),
                    "{:?}: flipped bit {} of byte {} decoded silently", enc, bit, pos
                );
            }
        }
    }

    #[test]
    fn truncation_never_decodes(s in summary(), cut in 0usize..65_536) {
        for enc in [Encoding::Dense, Encoding::Delta] {
            let buf = encode_summary(&s, enc);
            let cut = cut % buf.len();
            prop_assert!(decode_summary(&buf[..cut]).is_err(), "{:?} cut at {}", enc, cut);
        }
    }
}
