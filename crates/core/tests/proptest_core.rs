//! Property-based tests of the core fairshare invariants: policy
//! normalization, usage conservation, distance bounds, vector ordering, and
//! projection consistency across randomized trees and usage patterns.

use aequus_core::decay::DecayPolicy;
use aequus_core::fairshare::{FairshareConfig, FairshareTree};
use aequus_core::ids::{EntityPath, GridUser, JobId, SiteId};
use aequus_core::policy::{flat_policy, PolicyNode, PolicyTree};
use aequus_core::projection::ProjectionKind;
use aequus_core::usage::{UsageHistogram, UsageRecord};
use aequus_core::vector::{FairshareVector, Resolution};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Strategy: a flat policy over n users with random positive shares, plus
/// random usage values.
fn flat_scenario() -> impl Strategy<Value = (Vec<(String, f64)>, Vec<f64>)> {
    (2usize..12).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.01..10.0f64, n),
            proptest::collection::vec(0.0..1000.0f64, n),
        )
            .prop_map(|(shares, usage)| {
                let named: Vec<(String, f64)> = shares
                    .into_iter()
                    .enumerate()
                    .map(|(i, s)| (format!("u{i}"), s))
                    .collect();
                (named, usage)
            })
    })
}

fn build_tree(shares: &[(String, f64)], usage: &[f64], k: f64) -> (PolicyTree, FairshareTree) {
    let pairs: Vec<(&str, f64)> = shares.iter().map(|(n, s)| (n.as_str(), *s)).collect();
    let policy = flat_policy(&pairs).unwrap();
    let usage_map: BTreeMap<GridUser, f64> = shares
        .iter()
        .zip(usage)
        .map(|((n, _), &u)| (GridUser::new(n.clone()), u))
        .collect();
    let cfg = FairshareConfig {
        k_weight: k,
        ..Default::default()
    };
    let tree = FairshareTree::compute(&policy, &usage_map, &cfg, 0.0);
    (policy, tree)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn normalized_shares_sum_to_one((shares, _) in flat_scenario()) {
        let pairs: Vec<(&str, f64)> = shares.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        let policy = flat_policy(&pairs).unwrap();
        let normalized = policy.normalized_children(&EntityPath::root());
        let total: f64 = normalized.values().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        for v in normalized.values() {
            prop_assert!(*v >= 0.0 && *v <= 1.0);
        }
    }

    #[test]
    fn distances_bounded_by_theory((shares, usage) in flat_scenario(), k in 0.0..1.0f64) {
        let (policy, tree) = build_tree(&shares, &usage, k);
        let cfg = FairshareConfig { k_weight: k, ..Default::default() };
        for (name, _) in &shares {
            let user = GridUser::new(name.clone());
            let d = tree.user_priority(&user).unwrap();
            // Global bounds.
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&d), "{name}: {d}");
            // Per-user upper bound: k + (1−k)·share, attained at zero usage.
            let p = policy
                .normalized_children(&EntityPath::root())
                .get(name)
                .copied()
                .unwrap_or(0.0);
            prop_assert!(
                d <= cfg.max_priority(p) + 1e-9,
                "{name}: d={d} > bound {}",
                cfg.max_priority(p)
            );
        }
    }

    #[test]
    fn usage_shares_sum_to_one_when_positive((shares, usage) in flat_scenario()) {
        prop_assume!(usage.iter().sum::<f64>() > 0.0);
        let (_, tree) = build_tree(&shares, &usage, 0.5);
        let total: f64 = shares
            .iter()
            .map(|(n, _)| {
                tree.node(&EntityPath::parse(&format!("/{n}")))
                    .unwrap()
                    .usage_share
            })
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "usage shares sum to {total}");
    }

    #[test]
    fn balanced_usage_is_fixed_point((shares, _) in flat_scenario()) {
        // Usage proportional to normalized shares ⇒ all distances zero.
        let pairs: Vec<(&str, f64)> = shares.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        let policy = flat_policy(&pairs).unwrap();
        let normalized = policy.normalized_children(&EntityPath::root());
        let usage: Vec<f64> = shares
            .iter()
            .map(|(n, _)| normalized[n] * 1234.5)
            .collect();
        let (_, tree) = build_tree(&shares, &usage, 0.5);
        for (name, _) in &shares {
            let d = tree.user_priority(&GridUser::new(name.clone())).unwrap();
            prop_assert!(d.abs() < 1e-9, "{name}: {d}");
        }
    }

    #[test]
    fn vector_faithful_projections_agree_with_vector_order((shares, usage) in flat_scenario()) {
        // Dictionary and bitwise operate *on the vectors*, so strict vector
        // ordering must be preserved. (Percental re-derives its own
        // absolute-share metric, which can legally order users with
        // different policy shares differently from the combined distance —
        // the price of its share-product construction.)
        let (_, tree) = build_tree(&shares, &usage, 0.5);
        let vectors = tree.all_vectors();
        for kind in [ProjectionKind::Dictionary, ProjectionKind::Bitwise] {
            let values = kind.build().project(&tree);
            for (ua, va) in &vectors {
                for (ub, vb) in &vectors {
                    if va.compare(vb) == std::cmp::Ordering::Greater {
                        let (fa, fb) = (values[ua], values[ub]);
                        prop_assert!(
                            fa >= fb - 1e-9,
                            "{kind:?}: {ua} > {ub} by vector but {fa} < {fb}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn percental_orders_equal_share_users_by_usage((_, usage) in flat_scenario()) {
        // With equal policy shares, percental must rank lower usage higher —
        // its metric reduces to −usage share.
        let n = usage.len();
        let shares: Vec<(String, f64)> =
            (0..n).map(|i| (format!("u{i}"), 1.0)).collect();
        let (_, tree) = build_tree(&shares, &usage, 0.5);
        let values = ProjectionKind::Percental.build().project(&tree);
        for i in 0..n {
            for j in 0..n {
                if usage[i] < usage[j] - 1e-9 {
                    let (fi, fj) = (
                        values[&GridUser::new(format!("u{i}"))],
                        values[&GridUser::new(format!("u{j}"))],
                    );
                    prop_assert!(fi >= fj - 1e-12, "u{i}({fi}) vs u{j}({fj})");
                }
            }
        }
    }

    #[test]
    fn histogram_conserves_charge(
        jobs in proptest::collection::vec((0.0..1e4f64, 0.1..1e3f64, 1u32..8), 1..40),
        slot in 1.0..500.0f64,
    ) {
        let mut h = UsageHistogram::new(slot);
        let mut expected = 0.0;
        for (i, (start, len, cores)) in jobs.iter().enumerate() {
            let rec = UsageRecord {
                job: JobId(i as u64),
                user: GridUser::new(format!("u{}", i % 3)),
                site: SiteId(0),
                cores: *cores,
                start_s: *start,
                end_s: start + len,
            };
            expected += rec.charge();
            h.record(&rec);
        }
        prop_assert!((h.total_recorded() - expected).abs() < 1e-6 * expected.max(1.0));
        // Per-user raw sums equal the total.
        let by_user: f64 = (0..3)
            .map(|i| h.raw_usage(&GridUser::new(format!("u{i}"))))
            .sum();
        prop_assert!((by_user - expected).abs() < 1e-6 * expected.max(1.0));
        // Decayed usage never exceeds raw usage.
        for i in 0..3 {
            let user = GridUser::new(format!("u{i}"));
            let raw = h.raw_usage(&user);
            let dec = h.decayed_usage(&user, 2e4, DecayPolicy::default());
            prop_assert!(dec <= raw + 1e-9, "decayed {dec} > raw {raw}");
        }
    }

    #[test]
    fn decay_weight_monotone_in_age(
        age1 in 0.0..1e6f64,
        delta in 0.0..1e6f64,
        half in 1.0..1e6f64,
    ) {
        for policy in [
            DecayPolicy::None,
            DecayPolicy::Exponential { half_life_s: half },
            DecayPolicy::Window { window_s: half },
            DecayPolicy::Linear { span_s: half },
        ] {
            let w1 = policy.weight(age1);
            let w2 = policy.weight(age1 + delta);
            prop_assert!(w2 <= w1 + 1e-12, "{policy:?}");
            prop_assert!((0.0..=1.0).contains(&w1));
        }
    }

    #[test]
    fn vector_compare_total_order(
        a in proptest::collection::vec(0.0..9999.0f64, 1..6),
        b in proptest::collection::vec(0.0..9999.0f64, 1..6),
        c in proptest::collection::vec(0.0..9999.0f64, 1..6),
    ) {
        let r = Resolution::PAPER;
        let va = FairshareVector::from_elements(a, r);
        let vb = FairshareVector::from_elements(b, r);
        let vc = FairshareVector::from_elements(c, r);
        // Antisymmetry.
        prop_assert_eq!(va.compare(&vb), vb.compare(&va).reverse());
        // Transitivity.
        use std::cmp::Ordering::*;
        if va.compare(&vb) != Greater && vb.compare(&vc) != Greater {
            prop_assert!(va.compare(&vc) != Greater);
        }
        // Padding does not change the order.
        let depth = va.depth().max(vb.depth()) + 2;
        prop_assert_eq!(va.compare(&vb), va.padded(depth).compare(&vb.padded(depth)));
    }

    #[test]
    fn subtree_usage_isolation(
        u1 in 0.0..1000.0f64,
        u2 in 0.0..1000.0f64,
        lever in 0.0..100_000.0f64,
    ) {
        // Moving usage inside sibling subtree g1 never changes the *vector
        // elements* of users inside g2 (the representation-level guarantee
        // behind Table I's subgroup-isolation column).
        prop_assume!(u1 + u2 > 0.0);
        let policy = PolicyTree::new(PolicyNode::group(
            "root",
            1.0,
            vec![
                PolicyNode::group("g1", 0.5, vec![PolicyNode::user("x", 1.0)]),
                PolicyNode::group(
                    "g2",
                    0.5,
                    vec![PolicyNode::user("a", 0.6), PolicyNode::user("b", 0.4)],
                ),
            ],
        ))
        .unwrap();
        let cfg = FairshareConfig::default();
        let tree_for = |x_usage: f64| {
            let usage: BTreeMap<GridUser, f64> = [
                (GridUser::new("x"), x_usage),
                (GridUser::new("a"), u1),
                (GridUser::new("b"), u2),
            ]
            .into_iter()
            .collect();
            FairshareTree::compute(&policy, &usage, &cfg, 0.0)
        };
        let t1 = tree_for(lever);
        let t2 = tree_for(lever * 2.0 + 1.0);
        for user in ["a", "b"] {
            let path = EntityPath::parse(&format!("/g2/{user}"));
            let e1 = t1.node(&path).unwrap().element;
            let e2 = t2.node(&path).unwrap().element;
            prop_assert!((e1 - e2).abs() < 1e-9, "{user}: {e1} vs {e2}");
        }
    }
}

/// Strategy: a random two-level policy tree (groups with users).
fn random_tree() -> impl Strategy<Value = PolicyTree> {
    proptest::collection::vec((1usize..5, 0.1..10.0f64), 1..5).prop_map(|groups| {
        let children: Vec<PolicyNode> = groups
            .iter()
            .enumerate()
            .map(|(g, (users, share))| {
                PolicyNode::group(
                    format!("g{g}"),
                    *share,
                    (0..*users)
                        .map(|u| PolicyNode::user(format!("g{g}u{u}"), 1.0 + u as f64))
                        .collect(),
                )
            })
            .collect();
        PolicyTree::new(PolicyNode::group("root", 1.0, children)).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn policy_file_roundtrip(tree in random_tree()) {
        use aequus_core::policy_file::{parse_policy, to_policy_file};
        let text = to_policy_file(&tree);
        let back = parse_policy(&text).unwrap();
        prop_assert_eq!(back.users().len(), tree.users().len());
        for (path, user) in tree.users() {
            let a = tree.absolute_share(&path).unwrap();
            let b = back.absolute_share(&path).unwrap();
            prop_assert!((a - b).abs() < 1e-12, "{path}: {a} vs {b}");
            prop_assert_eq!(back.path_of_user(&user), Some(path));
        }
    }

    #[test]
    fn combined_vector_blend_laws(
        elems in proptest::collection::vec(0.0..9999.0f64, 1..6),
        age in 0.0..1.0f64,
        qos in 0.0..1.0f64,
        size in 0.0..1.0f64,
        w_fs in 0.01..1.0f64,
        w_age in 0.0..1.0f64,
    ) {
        use aequus_core::combined::{CombinedVector, VectorWeights};
        use aequus_core::vector::{FairshareVector, Resolution};
        let w = VectorWeights { fairshare: w_fs, age: w_age, qos: 0.1, size: 0.1 };
        let v = FairshareVector::from_elements(elems.clone(), Resolution::PAPER);
        let c = CombinedVector::blend(&v, age, qos, size, &w);
        // Elements stay in range.
        for e in c.elements() {
            prop_assert!((0.0..=9999.0 + 1e-9).contains(e), "{e}");
        }
        // Monotone in each fairshare element: raising one element never
        // lowers the combined vector.
        let mut raised = elems.clone();
        raised[0] = (raised[0] + 1.0).min(9999.0);
        let v2 = FairshareVector::from_elements(raised, Resolution::PAPER);
        let c2 = CombinedVector::blend(&v2, age, qos, size, &w);
        prop_assert!(c2.compare(&c) != std::cmp::Ordering::Less);
        // Monotone in age.
        let older = CombinedVector::blend(&v, (age + 0.1).min(1.0), qos, size, &w);
        prop_assert!(older.compare(&c) != std::cmp::Ordering::Less);
        // Scalar view in range.
        prop_assert!((0.0..=1.0).contains(&c.scalar_view()));
    }
}
