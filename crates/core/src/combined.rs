//! Combining fairshare vectors with other priority factors **in vector
//! space** — the research direction §III-C flags as future work: "one
//! interesting alternative is to reverse the problem and instead investigate
//! modeling other factors, such as job age, using a representation
//! combinable with the fairshare vectors."
//!
//! Instead of projecting the fairshare vector down to a scalar (losing one
//! of Table I's properties), every other factor is *lifted* into the vector
//! representation and blended element-wise:
//!
//! * scalar factors (age, QoS, size ∈ [0, 1]) become *uniform vectors* — the
//!   same element at every level, centered so factor 0.5 is the balance
//!   point;
//! * the combined vector is the weight-normalized affine blend per level,
//!   which stays inside the resolution range;
//! * jobs are compared lexicographically on the combined vector.
//!
//! What survives (unlike any scalar projection): infinite depth and
//! precision (elements stay `f64` per level), subgroup isolation (level
//! elements only blend with *uniform* offsets, so within-group order at
//! every level is preserved whenever the scalar factors tie), and
//! proportionality (the blend is affine). The price is that the result is a
//! vector — it cannot feed a stock RMS's scalar factor machinery, which is
//! why it is future work in the paper and an optional mode here.

use crate::vector::{FairshareVector, Resolution};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Weights of the vector-space priority blend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VectorWeights {
    /// Weight of the fairshare vector.
    pub fairshare: f64,
    /// Weight of the (lifted) job-age factor.
    pub age: f64,
    /// Weight of the (lifted) QoS factor.
    pub qos: f64,
    /// Weight of the (lifted) size factor.
    pub size: f64,
}

impl VectorWeights {
    /// Fairshare only — reduces exactly to fairshare-vector ordering.
    pub fn fairshare_only() -> Self {
        Self {
            fairshare: 1.0,
            age: 0.0,
            qos: 0.0,
            size: 0.0,
        }
    }

    fn total(&self) -> f64 {
        self.fairshare + self.age + self.qos + self.size
    }
}

impl Default for VectorWeights {
    fn default() -> Self {
        Self::fairshare_only()
    }
}

/// A job's combined priority vector: fairshare structure per level plus
/// uniform lifts of the scalar factors.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedVector {
    elements: Vec<f64>,
    resolution: Resolution,
}

impl CombinedVector {
    /// Blend a fairshare vector with scalar factors (each in `[0, 1]`,
    /// where 0.5 is neutral) under the given weights.
    ///
    /// Per level `l`:
    /// `combined[l] = (w_fs·fs[l] + Σ_f w_f·lift(factor_f)) / Σ w`
    /// with `lift(x) = x·max_value` (so 0.5 lifts to the balance point).
    pub fn blend(
        fairshare: &FairshareVector,
        age: f64,
        qos: f64,
        size: f64,
        weights: &VectorWeights,
    ) -> Self {
        let resolution = fairshare.resolution();
        let total = weights.total().max(f64::MIN_POSITIVE);
        let lift = |x: f64| x.clamp(0.0, 1.0) * resolution.max_value;
        let uniform =
            (weights.age * lift(age) + weights.qos * lift(qos) + weights.size * lift(size)) / total;
        let scale = weights.fairshare / total;
        let elements = fairshare
            .elements()
            .iter()
            .map(|&e| scale * e + uniform)
            .collect();
        Self {
            elements,
            resolution,
        }
    }

    /// The blended element values, root level first.
    pub fn elements(&self) -> &[f64] {
        &self.elements
    }

    /// Lexicographic comparison from the root level (higher = runs first),
    /// padding the shorter vector with the blend of the balance point.
    pub fn compare(&self, other: &CombinedVector) -> Ordering {
        let depth = self.elements.len().max(other.elements.len());
        for i in 0..depth {
            let a = self
                .elements
                .get(i)
                .copied()
                .unwrap_or(self.resolution.balance());
            let b = other
                .elements
                .get(i)
                .copied()
                .unwrap_or(other.resolution.balance());
            match a.partial_cmp(&b).expect("blend of finite elements") {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// A scalar view for display/compatibility: the mean element rescaled to
    /// `[0, 1]`. (Ordering by this scalar is lossy; use [`compare`] to rank.)
    ///
    /// [`compare`]: CombinedVector::compare
    pub fn scalar_view(&self) -> f64 {
        if self.elements.is_empty() {
            return 0.5;
        }
        let mean: f64 = self.elements.iter().sum::<f64>() / self.elements.len() as f64;
        mean / self.resolution.max_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs(elements: Vec<f64>) -> FairshareVector {
        FairshareVector::from_elements(elements, Resolution::PAPER)
    }

    #[test]
    fn fairshare_only_preserves_vector_order() {
        let w = VectorWeights::fairshare_only();
        let a = fs(vec![6000.0, 1000.0]);
        let b = fs(vec![5000.0, 9000.0]);
        let ca = CombinedVector::blend(&a, 0.9, 0.9, 0.9, &w);
        let cb = CombinedVector::blend(&b, 0.1, 0.1, 0.1, &w);
        // Zero-weight factors have no influence.
        assert_eq!(ca.compare(&cb), a.compare(&b));
    }

    #[test]
    fn age_breaks_fairshare_ties() {
        let w = VectorWeights {
            fairshare: 0.8,
            age: 0.2,
            qos: 0.0,
            size: 0.0,
        };
        let v = fs(vec![5000.0, 5000.0]);
        let young = CombinedVector::blend(&v, 0.1, 0.5, 0.5, &w);
        let old = CombinedVector::blend(&v, 0.9, 0.5, 0.5, &w);
        assert_eq!(old.compare(&young), Ordering::Greater);
    }

    #[test]
    fn subgroup_isolation_survives_blending() {
        // Same scalar factors: within-level order identical to fairshare
        // order at every level — no cross-level leakage (what the percental
        // projection loses).
        let w = VectorWeights {
            fairshare: 0.5,
            age: 0.3,
            qos: 0.1,
            size: 0.1,
        };
        let a = fs(vec![5000.0, 7000.0]);
        let b = fs(vec![5000.0, 3000.0]);
        let ca = CombinedVector::blend(&a, 0.4, 0.5, 0.6, &w);
        let cb = CombinedVector::blend(&b, 0.4, 0.5, 0.6, &w);
        assert_eq!(ca.compare(&cb), Ordering::Greater);
        assert_eq!(ca.elements()[0], cb.elements()[0], "level 0 untouched");
    }

    #[test]
    fn proportionality_of_blend() {
        // Element differences scale linearly with the fairshare weight.
        let w = VectorWeights {
            fairshare: 0.5,
            age: 0.5,
            qos: 0.0,
            size: 0.0,
        };
        let a = fs(vec![6000.0]);
        let b = fs(vec![4000.0]);
        let ca = CombinedVector::blend(&a, 0.5, 0.5, 0.5, &w);
        let cb = CombinedVector::blend(&b, 0.5, 0.5, 0.5, &w);
        let diff = ca.elements()[0] - cb.elements()[0];
        assert!((diff - 0.5 * 2000.0).abs() < 1e-9, "{diff}");
    }

    #[test]
    fn blend_stays_in_range() {
        let w = VectorWeights {
            fairshare: 0.25,
            age: 0.25,
            qos: 0.25,
            size: 0.25,
        };
        for fs_e in [0.0, 4999.5, 9999.0] {
            for f in [0.0, 0.5, 1.0] {
                let c = CombinedVector::blend(&fs(vec![fs_e]), f, f, f, &w);
                let e = c.elements()[0];
                assert!((0.0..=9999.0).contains(&e), "{e}");
            }
        }
    }

    #[test]
    fn neutral_factors_map_to_balance() {
        let w = VectorWeights {
            fairshare: 0.5,
            age: 0.5,
            qos: 0.0,
            size: 0.0,
        };
        let balanced = fs(vec![4999.5]);
        let c = CombinedVector::blend(&balanced, 0.5, 0.5, 0.5, &w);
        assert!((c.elements()[0] - 4999.5).abs() < 1e-9);
        assert!((c.scalar_view() - 0.5).abs() < 1e-4);
    }

    #[test]
    fn depth_and_precision_retained() {
        // Differences at depth 20 and at 1e-9 granularity both survive.
        let w = VectorWeights {
            fairshare: 0.9,
            age: 0.1,
            qos: 0.0,
            size: 0.0,
        };
        let mut deep_a = vec![4999.5; 20];
        let mut deep_b = vec![4999.5; 20];
        deep_a[19] = 4999.5 + 1e-9;
        deep_b[19] = 4999.5;
        let ca = CombinedVector::blend(&fs(deep_a), 0.5, 0.5, 0.5, &w);
        let cb = CombinedVector::blend(&fs(deep_b), 0.5, 0.5, 0.5, &w);
        assert_eq!(ca.compare(&cb), Ordering::Greater);
    }
}
