//! Identity newtypes shared across the Aequus stack.
//!
//! Grid-wide fairshare requires that the *grid* user identity — not the
//! per-site system account — is attached to every job (§III-B). These types
//! keep the two identity spaces from being confused at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A grid-wide user identity (e.g. a certificate DN). This is the identity
/// Aequus uses "throughout the entire fairshare prioritization process".
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GridUser(pub String);

impl GridUser {
    /// Create a grid user identity from any string-like value.
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }
    /// The identity string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for GridUser {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for GridUser {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

/// A per-site system account a grid user is mapped to (e.g. `grid0042`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SystemUser(pub String);

impl SystemUser {
    /// Create a system user name.
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }
    /// The account name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SystemUser {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for SystemUser {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

/// A resource site (cluster installation) participating in the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// A job identifier, unique within the originating submission stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// A path through the policy/fairshare hierarchy from the root to an entity,
/// e.g. `/atlas/simulation/alice` (Figure 3 of the paper writes these as
/// `/LQ`, `/HP/u1`, ...).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct EntityPath(pub Vec<String>);

impl EntityPath {
    /// The root path (empty).
    pub fn root() -> Self {
        Self(Vec::new())
    }

    /// Parse from a `/`-separated string; leading/trailing slashes ignored.
    pub fn parse(s: &str) -> Self {
        Self(
            s.split('/')
                .filter(|p| !p.is_empty())
                .map(str::to_string)
                .collect(),
        )
    }

    /// Number of path components (hierarchy depth of the entity).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the root path.
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }

    /// Append one component, returning the child path.
    pub fn child(&self, name: &str) -> Self {
        let mut v = self.0.clone();
        v.push(name.to_string());
        Self(v)
    }

    /// The final component, if any (the entity's own name).
    pub fn leaf(&self) -> Option<&str> {
        self.0.last().map(String::as_str)
    }

    /// Whether `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &EntityPath) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Path components.
    pub fn components(&self) -> &[String] {
        &self.0
    }
}

impl fmt::Display for EntityPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/{}", self.0.join("/"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_parse_and_display() {
        let p = EntityPath::parse("/HP/u1");
        assert_eq!(p.depth(), 2);
        assert_eq!(p.to_string(), "/HP/u1");
        assert_eq!(p.leaf(), Some("u1"));
        assert_eq!(EntityPath::parse("HP/u1"), p);
        assert_eq!(EntityPath::parse("//HP//u1/"), p);
    }

    #[test]
    fn root_path() {
        let r = EntityPath::root();
        assert!(r.is_root());
        assert_eq!(r.depth(), 0);
        assert_eq!(r.to_string(), "/");
        assert_eq!(r.leaf(), None);
    }

    #[test]
    fn prefix_relation() {
        let root = EntityPath::root();
        let hp = EntityPath::parse("/HP");
        let u1 = EntityPath::parse("/HP/u1");
        let lq = EntityPath::parse("/LQ");
        assert!(root.is_prefix_of(&u1));
        assert!(hp.is_prefix_of(&u1));
        assert!(hp.is_prefix_of(&hp));
        assert!(!u1.is_prefix_of(&hp));
        assert!(!lq.is_prefix_of(&u1));
    }

    #[test]
    fn child_builds_path() {
        let p = EntityPath::root().child("grid").child("atlas");
        assert_eq!(p, EntityPath::parse("/grid/atlas"));
    }

    #[test]
    fn identity_types_distinct() {
        let g = GridUser::new("C=SE/O=Uni/CN=alice");
        let s = SystemUser::new("grid0042");
        assert_eq!(g.as_str(), "C=SE/O=Uni/CN=alice");
        assert_eq!(s.to_string(), "grid0042");
    }
}
