//! # aequus-core
//!
//! The core of the Aequus reproduction: the paper's primary contribution —
//! decentralized grid-wide fairshare prioritization — as a library.
//!
//! The three constituents of the fairshare calculation process (§II-A):
//!
//! 1. **Hierarchical usage policies** ([`policy`]): tree-based target shares
//!    with recursively subdividable subgroups and dynamically *mountable*
//!    sub-policies, so local administrations retain control of their
//!    clusters while grids manage their own internal subdivision.
//! 2. **Usage data** ([`usage`]): per-user resource consumption rolled into
//!    per-interval histograms, exchanged between sites in compact summaries,
//!    aged by configurable [`decay`] functions.
//! 3. **The algorithm** ([`fairshare`]): per-node distances between policy
//!    and usage shares (absolute + relative, weight `k`), extracted as
//!    per-user fairshare [`vector`]s and projected to `[0, 1]` scalars by
//!    three interchangeable [`projection`] algorithms (Table I).
//!
//! The paper's flagged future-work direction — lifting other priority
//! factors (age, QoS, size) into the vector representation instead of
//! projecting fairshare down — is implemented in [`combined`].

#![warn(missing_docs)]

pub mod arena;
pub mod codec;
pub mod combined;
pub mod decay;
pub mod explain;
pub mod fairshare;
pub mod ids;
pub mod policy;
pub mod policy_file;
pub mod projection;
pub mod usage;
pub mod vector;

pub use arena::{DirtySet, NodeId, PathInterner, RecomputeStats, UserId};
pub use codec::{decode_summary, encode_summary, CodecError, Encoding};
pub use combined::{CombinedVector, VectorWeights};
pub use decay::DecayPolicy;
pub use explain::{Explanation, LevelExplanation, ProjectionExplanation};
pub use fairshare::{FairshareConfig, FairshareTree, NodeShare};
pub use ids::{EntityPath, GridUser, JobId, SiteId, SystemUser};
pub use policy::{flat_policy, PolicyError, PolicyNode, PolicyNodeKind, PolicyTree};
pub use policy_file::{parse_policy, to_policy_file, PolicyFileError};
pub use projection::{Projection, ProjectionKind};
pub use usage::{UsageHistogram, UsageRecord, UsageSummary, UserCells};
pub use vector::{FairshareVector, Resolution};
