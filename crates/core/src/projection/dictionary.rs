//! Dictionary-ordering projection (§III-C): vectors are sorted
//! lexicographically (descending) and assigned evenly spaced values by rank —
//! "three vectors would result in the numerical values 0.75, 0.50, and 0.25,
//! according to sorting order". Retains depth, precision, and isolation but
//! discards proportionality: only the *order* survives.

use super::Projection;
use crate::fairshare::FairshareTree;
use crate::ids::GridUser;
use std::collections::BTreeMap;

/// Rank-based projection with evenly spaced values.
#[derive(Debug, Clone, Copy, Default)]
pub struct DictionaryOrdering;

/// Value assigned to the tie span `[i, j)` in a population of `n` ranked
/// vectors: the average of `(n − r) / (n + 1)` over the span. Shared between
/// [`DictionaryOrdering::project`] and the explain layer so a captured rank
/// replays to the identical factor.
pub fn rank_value(i: usize, j: usize, n: usize) -> f64 {
    (i..j)
        .map(|r| (n - r) as f64 / (n as f64 + 1.0))
        .sum::<f64>()
        / (j - i) as f64
}

impl DictionaryOrdering {
    /// The rank span of `user` under the projection's descending sort:
    /// `(rank_start, tie_count, population)`. `rank_start` is the 0-based
    /// index of the first vector tied with the user's; the projected factor
    /// is [`rank_value`]`(rank_start, rank_start + tie_count, population)`.
    pub fn rank_of(&self, tree: &FairshareTree, user: &GridUser) -> Option<(usize, usize, usize)> {
        let mut entries = tree.all_vectors();
        entries.sort_by(|a, b| b.1.compare(&a.1).then_with(|| a.0.cmp(&b.0)));
        let n = entries.len();
        let pos = entries.iter().position(|(u, _)| u == user)?;
        let mut i = pos;
        while i > 0 && entries[i - 1].1.compare(&entries[pos].1).is_eq() {
            i -= 1;
        }
        let mut j = pos + 1;
        while j < n && entries[j].1.compare(&entries[pos].1).is_eq() {
            j += 1;
        }
        Some((i, j - i, n))
    }
}

impl Projection for DictionaryOrdering {
    fn name(&self) -> &'static str {
        "dictionary"
    }

    fn project(&self, tree: &FairshareTree) -> BTreeMap<GridUser, f64> {
        let mut entries = tree.all_vectors();
        // Descending sort: highest vector (most under-served) first.
        entries.sort_by(|a, b| b.1.compare(&a.1).then_with(|| a.0.cmp(&b.0)));
        let n = entries.len();
        if n == 0 {
            return BTreeMap::new();
        }
        // Rank r (0-based, 0 = best) gets (n − r) / (n + 1). Ties share the
        // average value of their rank span, so equal vectors map to equal
        // factors.
        let mut out = BTreeMap::new();
        let mut i = 0usize;
        while i < n {
            let mut j = i + 1;
            while j < n && entries[j].1.compare(&entries[i].1).is_eq() {
                j += 1;
            }
            let avg = rank_value(i, j, n);
            for e in &entries[i..j] {
                out.insert(e.0.clone(), avg);
            }
            i = j;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::test_util::flat_tree;

    #[test]
    fn paper_example_three_vectors() {
        // Distinct priorities → 0.75 / 0.50 / 0.25 by sorting order.
        let tree = flat_tree(&[("high", 0.4, 0.0), ("mid", 0.3, 300.0), ("low", 0.3, 700.0)]);
        let v = DictionaryOrdering.project(&tree);
        assert!((v[&GridUser::new("high")] - 0.75).abs() < 1e-12);
        assert!((v[&GridUser::new("mid")] - 0.50).abs() < 1e-12);
        assert!((v[&GridUser::new("low")] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ties_share_average_value() {
        // Two users with identical share and usage → identical vectors.
        let tree = flat_tree(&[("a", 0.25, 100.0), ("b", 0.25, 100.0), ("c", 0.5, 800.0)]);
        let v = DictionaryOrdering.project(&tree);
        assert_eq!(v[&GridUser::new("a")], v[&GridUser::new("b")]);
        assert!(v[&GridUser::new("a")] > v[&GridUser::new("c")]);
    }

    #[test]
    fn not_proportional_by_construction() {
        // Distances 0.9 vs 0.1 apart still produce evenly spaced outputs.
        let tree = flat_tree(&[
            ("far", 0.6, 0.0),
            ("near1", 0.2, 210.0),
            ("near2", 0.2, 190.0),
        ]);
        let v = DictionaryOrdering.project(&tree);
        let gap1 = v[&GridUser::new("far")] - v[&GridUser::new("near2")];
        let gap2 = v[&GridUser::new("near2")] - v[&GridUser::new("near1")];
        assert!((gap1 - gap2).abs() < 1e-12, "rank spacing is uniform");
    }

    #[test]
    fn empty_tree() {
        let tree = flat_tree(&[]);
        assert!(DictionaryOrdering.project(&tree).is_empty());
    }

    #[test]
    fn rank_of_reproduces_projected_value() {
        let tree = flat_tree(&[
            ("a", 0.25, 100.0),
            ("b", 0.25, 100.0),
            ("c", 0.3, 800.0),
            ("d", 0.2, 50.0),
        ]);
        let proj = DictionaryOrdering;
        let v = proj.project(&tree);
        for name in ["a", "b", "c", "d"] {
            let user = GridUser::new(name);
            let (i, ties, n) = proj.rank_of(&tree, &user).unwrap();
            let replayed = rank_value(i, i + ties, n);
            assert_eq!(replayed.to_bits(), v[&user].to_bits(), "{name}");
        }
        assert!(proj.rank_of(&tree, &GridUser::new("ghost")).is_none());
    }

    #[test]
    fn single_user_gets_half() {
        let tree = flat_tree(&[("only", 1.0, 10.0)]);
        let v = DictionaryOrdering.project(&tree);
        assert!((v[&GridUser::new("only")] - 0.5).abs() < 1e-12);
    }
}
