//! Bitwise-vector projection (§III-C): each vector element is awarded N bits
//! of entropy; level values are bitwise-merged with the root level at the
//! most significant end, and the result is rescaled to `[0, 1]`.
//!
//! Trade-off: a double's 52-bit mantissa bounds `N · depth`, so both depth
//! and precision are finite — the ✗ entries of Table I.

use super::Projection;
use crate::fairshare::FairshareTree;
use crate::ids::GridUser;
use std::collections::BTreeMap;

/// Bit-merging projection with `bits_per_level` bits of entropy per level.
#[derive(Debug, Clone, Copy)]
pub struct BitwiseVector {
    /// Bits of entropy awarded to each hierarchy level (1..=52).
    pub bits_per_level: u32,
}

impl BitwiseVector {
    /// Maximum usable mantissa bits of an f64.
    pub const MANTISSA_BITS: u32 = 52;

    /// Create with the given per-level bit budget, clamped to 1..=52.
    pub fn new(bits_per_level: u32) -> Self {
        Self {
            bits_per_level: bits_per_level.clamp(1, Self::MANTISSA_BITS),
        }
    }

    /// How many levels fit in the mantissa before deeper levels are dropped.
    pub fn max_levels(&self) -> usize {
        (Self::MANTISSA_BITS / self.bits_per_level) as usize
    }

    /// Usable levels for a tree of the given depth. Public so provenance
    /// capture (the explain layer) can record the exact level count used.
    pub fn levels_for(&self, tree: &FairshareTree) -> usize {
        tree.depth().min(self.max_levels()).max(1)
    }

    /// Bit-merge one user's vector into a `[0, 1]` scalar. Public so a
    /// captured [`Explanation`](crate::explain::Explanation) can replay the
    /// projection bit-for-bit from its recorded vector and level count.
    pub fn merge_vector(&self, vec: &crate::vector::FairshareVector, levels: usize) -> f64 {
        let n = self.bits_per_level;
        let buckets = 1u64 << n;
        let max_merged = (1u64 << (n as u64 * levels as u64)) - 1;
        let res_max = vec.resolution().max_value;
        let mut acc: u64 = 0;
        let padded = vec.padded(levels);
        for (i, &e) in padded.elements().iter().take(levels).enumerate() {
            // Quantize the element into 2^N buckets — this is where the
            // N bits of entropy per level are awarded.
            let q = (e / res_max * (buckets - 1) as f64).round() as u64;
            acc |= q.min(buckets - 1) << ((levels - 1 - i) as u64 * n as u64);
        }
        acc as f64 / max_merged as f64
    }
}

impl Default for BitwiseVector {
    /// 8 bits per level: 6 usable levels, 256 priority steps per level.
    fn default() -> Self {
        Self::new(8)
    }
}

impl Projection for BitwiseVector {
    fn name(&self) -> &'static str {
        "bitwise"
    }

    fn project(&self, tree: &FairshareTree) -> BTreeMap<GridUser, f64> {
        let levels = self.levels_for(tree);
        tree.all_vectors()
            .into_iter()
            .map(|(user, vec)| (user, self.merge_vector(&vec, levels)))
            .collect()
    }

    fn project_user(&self, tree: &FairshareTree, user: &GridUser) -> Option<f64> {
        let vec = tree.vector_for_user(user)?;
        Some(self.merge_vector(&vec, self.levels_for(tree)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::test_util::{flat_tree, nested_tree};

    #[test]
    fn root_level_dominates() {
        let (_, tree) = nested_tree(&[
            ("g1", 0.5, &[("a", 1.0, 900.0)]),
            ("g2", 0.5, &[("b", 1.0, 100.0)]),
        ]);
        let v = BitwiseVector::default().project(&tree);
        // g2/b is under-served at the root level → strictly higher value.
        assert!(v[&GridUser::new("b")] > v[&GridUser::new("a")]);
    }

    #[test]
    fn values_in_unit_range() {
        let tree = flat_tree(&[("a", 0.6, 0.0), ("b", 0.4, 1000.0)]);
        for v in BitwiseVector::default().project(&tree).values() {
            assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn depth_limited_by_mantissa() {
        let p = BitwiseVector::new(8);
        assert_eq!(p.max_levels(), 6);
        let p = BitwiseVector::new(13);
        assert_eq!(p.max_levels(), 4);
        let p = BitwiseVector::new(52);
        assert_eq!(p.max_levels(), 1);
    }

    #[test]
    fn precision_limited_by_buckets() {
        // Two users whose elements differ by less than one bucket width
        // (and sit away from a bucket boundary) collapse to the same
        // projected value — the ∞-precision ✗.
        let tree = flat_tree(&[("a", 0.3, 100.000), ("b", 0.3, 100.001), ("c", 0.4, 800.0)]);
        let v = BitwiseVector::new(4).project(&tree);
        assert_eq!(v[&GridUser::new("a")], v[&GridUser::new("b")]);
    }

    #[test]
    fn proportionality_within_quantization() {
        // Flat tree: projected value is affine in the element value, so value
        // gaps mirror element gaps (up to one quantization step).
        let tree = flat_tree(&[
            ("a", 0.25, 0.0),
            ("b", 0.25, 250.0),
            ("c", 0.25, 500.0),
            ("d", 0.25, 250.0),
        ]);
        let proj = BitwiseVector::new(16);
        let v = proj.project(&tree);
        let elem = |name: &str| {
            tree.vector_for_user(&GridUser::new(name))
                .unwrap()
                .elements()[0]
        };
        let val_ratio = (v[&GridUser::new("a")] - v[&GridUser::new("b")])
            / (v[&GridUser::new("b")] - v[&GridUser::new("c")]);
        let elem_ratio = (elem("a") - elem("b")) / (elem("b") - elem("c"));
        assert!(
            (val_ratio - elem_ratio).abs() < 0.01,
            "{val_ratio} vs {elem_ratio}"
        );
    }

    #[test]
    fn bits_clamped() {
        assert_eq!(BitwiseVector::new(0).bits_per_level, 1);
        assert_eq!(BitwiseVector::new(99).bits_per_level, 52);
    }
}
