//! Percental projection (§III-C): a user's total target share is the product
//! of normalized shares along its path ("a project share of 0.20 and a user
//! share of 0.25 result in a share of 0.05"); total usage is the product of
//! usage shares; the fairshare value is `target − usage` rescaled to
//! `[0, 1]`. "A similar approach is used in SLURM prior to version 2.5."
//!
//! Trade-off: products across levels destroy subgroup isolation — usage
//! shifts inside one subtree can reorder users in a sibling subtree (the
//! ✗ of Table I). This is the algorithm used in the paper's production
//! deployment and throughout §IV ("the percental projection approach is used
//! during testing").

use super::Projection;
use crate::fairshare::FairshareTree;
use crate::ids::{EntityPath, GridUser};
use std::collections::BTreeMap;

/// Product-of-shares difference projection.
#[derive(Debug, Clone, Copy, Default)]
pub struct Percental;

impl Percental {
    /// Total (absolute) target and usage shares of the entity at `path`:
    /// products of the per-level normalized shares.
    pub fn total_shares(tree: &FairshareTree, path: &EntityPath) -> Option<(f64, f64)> {
        let mut target = 1.0;
        let mut usage = 1.0;
        let mut prefix = EntityPath::root();
        for comp in path.components() {
            prefix = prefix.child(comp);
            let node = tree.node(&prefix)?;
            target *= node.policy_share;
            usage *= node.usage_share;
        }
        Some((target, usage))
    }
}

impl Projection for Percental {
    fn name(&self) -> &'static str {
        "percental"
    }

    fn project(&self, tree: &FairshareTree) -> BTreeMap<GridUser, f64> {
        tree.users()
            .filter_map(|(user, path)| {
                let (target, usage) = Self::total_shares(tree, path)?;
                // target − usage ∈ [−1, 1]; rescale to [0, 1].
                Some((user.clone(), ((target - usage) + 1.0) / 2.0))
            })
            .collect()
    }

    fn project_user(&self, tree: &FairshareTree, user: &GridUser) -> Option<f64> {
        let (target, usage) = Self::total_shares(tree, tree.path_of_user(user)?)?;
        Some(((target - usage) + 1.0) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::test_util::{flat_tree, nested_tree};

    #[test]
    fn paper_share_product_example() {
        // "A project share of 0.20 and a user share of 0.25 result in 0.05."
        let (_, tree) = nested_tree(&[
            ("proj", 0.20, &[("u", 0.25, 10.0), ("v", 0.75, 10.0)]),
            ("rest", 0.80, &[("w", 1.0, 80.0)]),
        ]);
        let (target, _) = Percental::total_shares(&tree, &EntityPath::parse("/proj/u")).unwrap();
        assert!((target - 0.05).abs() < 1e-12);
    }

    #[test]
    fn balance_maps_to_half() {
        let tree = flat_tree(&[("a", 0.5, 500.0), ("b", 0.5, 500.0)]);
        let v = Percental.project(&tree);
        assert!((v[&GridUser::new("a")] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn under_served_above_half() {
        let tree = flat_tree(&[("a", 0.5, 900.0), ("b", 0.5, 100.0)]);
        let v = Percental.project(&tree);
        assert!(v[&GridUser::new("b")] > 0.5);
        assert!(v[&GridUser::new("a")] < 0.5);
        // Proportional: symmetric displacements around 0.5.
        let d = (v[&GridUser::new("b")] - 0.5) - (0.5 - v[&GridUser::new("a")]);
        assert!(d.abs() < 1e-12);
    }

    type GroupSpec<'a> = &'a [(&'a str, f64, &'a [(&'a str, f64, f64)])];

    #[test]
    fn isolation_violated_across_subtrees() {
        // Two users in group g2 with opposing target/usage differences; the
        // usage level of sibling group g1 flips their *projected* order even
        // though nothing inside g2 changed — the Table I ✗.
        // u1: high target (0.8) and high usage (900); u2: low target, low
        // usage. The sign of (target gap) − C·(usage gap) depends on C, the
        // usage share of g2 at the root — controlled entirely by g1.
        let base: GroupSpec = &[
            ("g1", 0.5, &[("x", 1.0, 100.0)]),
            ("g2", 0.5, &[("u1", 0.8, 900.0), ("u2", 0.2, 100.0)]),
        ];
        let heavy: GroupSpec = &[
            ("g1", 0.5, &[("x", 1.0, 100_000.0)]),
            ("g2", 0.5, &[("u1", 0.8, 900.0), ("u2", 0.2, 100.0)]),
        ];
        let (_, t1) = nested_tree(base);
        let (_, t2) = nested_tree(heavy);
        let v1 = Percental.project(&t1);
        let v2 = Percental.project(&t2);
        let order1 = v1[&GridUser::new("u1")] > v1[&GridUser::new("u2")];
        let order2 = v2[&GridUser::new("u1")] > v2[&GridUser::new("u2")];
        assert_ne!(order1, order2, "order must flip: {v1:?} vs {v2:?}");
    }

    #[test]
    fn values_in_unit_range() {
        let tree = flat_tree(&[("a", 1.0, 0.0), ("b", 0.0, 1000.0)]);
        for v in Percental.project(&tree).values() {
            assert!((0.0..=1.0).contains(v));
        }
    }
}
