//! Empirical property checkers regenerating Table I of the paper: for each
//! representation (raw fairshare vectors plus the three projections), decide
//! whether it retains infinite depth, infinite precision, subgroup isolation,
//! and proportionality, and whether it is combinable with other priority
//! factors.
//!
//! Each property is decided by running the algorithm on adversarial
//! scenarios built from real [`FairshareTree`]s, not by hard-coding the
//! expected matrix — the table is *measured*.

use super::{Projection, ProjectionKind};
use crate::fairshare::{FairshareConfig, FairshareTree};
use crate::ids::GridUser;
use crate::policy::{PolicyNode, PolicyTree};
use std::collections::BTreeMap;

/// The property columns of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProjectionProperties {
    /// Distinguishes differences at arbitrary hierarchy depth.
    pub infinite_depth: bool,
    /// Distinguishes arbitrarily small element differences.
    pub infinite_precision: bool,
    /// Order within a subgroup unaffected by sibling-subtree usage.
    pub subgroup_isolation: bool,
    /// Value differences reflect distance differences proportionally.
    pub proportional: bool,
    /// Output is a `[0, 1]` scalar combinable with other priority factors.
    pub combinable: bool,
}

impl ProjectionProperties {
    /// The properties of the raw fairshare-vector representation itself:
    /// everything except combinability (a vector is not a scalar factor).
    pub fn fairshare_vectors() -> Self {
        Self {
            infinite_depth: true,
            infinite_precision: true,
            subgroup_isolation: true,
            proportional: true,
            combinable: false,
        }
    }

    /// Render as a Table I row of ✓/✗ marks.
    pub fn row(&self) -> [bool; 5] {
        [
            self.infinite_depth,
            self.infinite_precision,
            self.subgroup_isolation,
            self.proportional,
            self.combinable,
        ]
    }
}

/// Build a deep chain-of-groups tree, `depth` levels, with a two-user fork at
/// the bottom whose usage difference is the only signal.
fn deep_tree(depth: usize, bottom_usage: (f64, f64)) -> FairshareTree {
    fn chain(level: usize, depth: usize) -> PolicyNode {
        if level == depth {
            PolicyNode::group(
                "fork",
                1.0,
                vec![PolicyNode::user("da", 0.5), PolicyNode::user("db", 0.5)],
            )
        } else {
            PolicyNode::group(format!("g{level}"), 1.0, vec![chain(level + 1, depth)])
        }
    }
    let policy = PolicyTree::new(PolicyNode::group("root", 1.0, vec![chain(0, depth)])).unwrap();
    let usage: BTreeMap<GridUser, f64> = [
        (GridUser::new("da"), bottom_usage.0),
        (GridUser::new("db"), bottom_usage.1),
    ]
    .into_iter()
    .collect();
    FairshareTree::compute(&policy, &usage, &FairshareConfig::default(), 0.0)
}

/// Flat tree helper: (user, share, usage) triples.
fn flat(entries: &[(&str, f64, f64)]) -> FairshareTree {
    let policy =
        crate::policy::flat_policy(&entries.iter().map(|(n, s, _)| (*n, *s)).collect::<Vec<_>>())
            .unwrap();
    let usage: BTreeMap<GridUser, f64> = entries
        .iter()
        .map(|(n, _, u)| (GridUser::new(*n), *u))
        .collect();
    FairshareTree::compute(&policy, &usage, &FairshareConfig::default(), 0.0)
}

/// Two-group tree for the isolation probe; `g1_usage` is the lever.
fn isolation_tree(g1_usage: f64) -> FairshareTree {
    let policy = PolicyTree::new(PolicyNode::group(
        "root",
        1.0,
        vec![
            PolicyNode::group("g1", 0.5, vec![PolicyNode::user("x", 1.0)]),
            PolicyNode::group(
                "g2",
                0.5,
                vec![PolicyNode::user("u1", 0.8), PolicyNode::user("u2", 0.2)],
            ),
        ],
    ))
    .unwrap();
    let usage: BTreeMap<GridUser, f64> = [
        (GridUser::new("x"), g1_usage),
        (GridUser::new("u1"), 900.0),
        (GridUser::new("u2"), 100.0),
    ]
    .into_iter()
    .collect();
    FairshareTree::compute(&policy, &usage, &FairshareConfig::default(), 0.0)
}

/// Probe: does the projection still see a difference buried `depth` levels
/// down?
fn probe_depth(proj: &dyn Projection, depth: usize) -> bool {
    let tree = deep_tree(depth, (900.0, 100.0));
    let v = proj.project(&tree);
    v[&GridUser::new("db")] > v[&GridUser::new("da")]
}

/// Probe: does the projection distinguish a tiny usage difference?
fn probe_precision(proj: &dyn Projection) -> bool {
    // Distances differ by ~1e-8, both well inside the same quantization
    // bucket (away from any bucket boundary) — representable by f64 and by
    // rank ordering, but invisible to few-bit quantization.
    let tree = flat(&[
        ("pa", 0.3, 100.0),
        ("pb", 0.3, 100.000_03),
        ("pc", 0.4, 800.0),
    ]);
    let v = proj.project(&tree);
    v[&GridUser::new("pa")] > v[&GridUser::new("pb")]
}

/// Probe: does sibling-subtree usage flip order inside a group?
fn probe_isolation(proj: &dyn Projection) -> bool {
    let order = |g1_usage: f64| {
        let v = proj.project(&isolation_tree(g1_usage));
        v[&GridUser::new("u1")] > v[&GridUser::new("u2")]
    };
    order(100.0) == order(100_000.0)
}

/// Probe: do value differences carry *magnitude* information?
///
/// "If non-proportional, the resulting fairshare number correctly indicates
/// the sorting order, but the relative difference is lost." Three users are
/// arranged so one pairwise imbalance gap is many times larger than the
/// other; a proportional projection produces a clearly larger value gap for
/// the larger imbalance, while a rank-based one spaces values uniformly
/// (ratio exactly 1).
fn probe_proportional(proj: &dyn Projection) -> bool {
    let tree = flat(&[
        ("qa", 1.0 / 3.0, 0.0),
        ("qb", 1.0 / 3.0, 4500.0),
        ("qc", 1.0 / 3.0, 5000.0),
    ]);
    let v = proj.project(&tree);
    let val = |n: &str| v[&GridUser::new(n)];
    let big = val("qa") - val("qb");
    let small = val("qb") - val("qc");
    big > 3.0 * small && small > 0.0
}

/// Probe: output is a scalar in `[0, 1]` for every user.
fn probe_combinable(proj: &dyn Projection) -> bool {
    let tree = flat(&[("ca", 0.9, 0.0), ("cb", 0.1, 1000.0)]);
    proj.project(&tree)
        .values()
        .all(|v| (0.0..=1.0).contains(v))
}

/// Measure all Table I properties of one projection algorithm.
pub fn measure(proj: &dyn Projection) -> ProjectionProperties {
    ProjectionProperties {
        // "Infinite" depth/precision are probed at adversarial-but-finite
        // scales: 12 levels deep (vs the 6-level f64-mantissa budget of the
        // default bitwise config) and ~1e-7 distance gaps.
        infinite_depth: probe_depth(proj, 12),
        infinite_precision: probe_precision(proj),
        subgroup_isolation: probe_isolation(proj),
        proportional: probe_proportional(proj),
        combinable: probe_combinable(proj),
    }
}

/// Regenerate the full Table I matrix: (row label, properties) for the raw
/// vectors and each projection algorithm.
pub fn table1() -> Vec<(String, ProjectionProperties)> {
    let mut rows = vec![(
        "Fairshare vectors".to_string(),
        ProjectionProperties::fairshare_vectors(),
    )];
    for kind in ProjectionKind::ALL {
        let proj = kind.build();
        rows.push((format!("{:?}", kind), measure(proj.as_ref())));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_matches_paper_row() {
        let p = measure(&super::super::DictionaryOrdering);
        assert!(p.infinite_depth);
        assert!(p.infinite_precision);
        assert!(p.subgroup_isolation);
        assert!(!p.proportional, "rank spacing cannot be proportional");
        assert!(p.combinable);
    }

    #[test]
    fn bitwise_matches_paper_row() {
        let p = measure(&super::super::BitwiseVector::default());
        assert!(!p.infinite_depth, "mantissa bounds depth");
        assert!(!p.infinite_precision, "buckets bound precision");
        assert!(p.subgroup_isolation);
        assert!(p.proportional);
        assert!(p.combinable);
    }

    #[test]
    fn percental_matches_paper_row() {
        let p = measure(&super::super::Percental);
        assert!(p.infinite_depth);
        assert!(p.infinite_precision);
        assert!(!p.subgroup_isolation, "share products leak across subtrees");
        assert!(p.proportional);
        assert!(p.combinable);
    }

    #[test]
    fn table_has_four_rows() {
        let t = table1();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].0, "Fairshare vectors");
        assert!(!t[0].1.combinable);
    }
}
