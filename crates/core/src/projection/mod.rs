//! Projections from fairshare vectors to single numerical values (§III-C).
//!
//! SLURM and Maui combine priority *factors* — each a float in `[0, 1]` —
//! with configurable weights. To feed globally computed fairshare into that
//! machinery, the fairshare vector must be projected to a `[0, 1]` scalar.
//! "A projection of the vector into a floating point number can in practice
//! not be done while still retaining all properties of the fairshare
//! vectors" — each algorithm trades something away (Table I):
//!
//! | | ∞ Depth | ∞ Precision | Subgroup isolation | Proportional | Combinable |
//! |---|---|---|---|---|---|
//! | Fairshare vectors | ✓ | ✓ | ✓ | ✓ | ✗ |
//! | Dictionary ordering | ✓ | ✓ | ✓ | ✗ | ✓ |
//! | Bitwise vector | ✗ | ✗ | ✓ | ✓ | ✓ |
//! | Percental | ✓ | ✓ | ✗ | ✓ | ✓ |

mod bitwise;
mod dictionary;
mod percental;
pub mod properties;

pub use bitwise::BitwiseVector;
pub use dictionary::{rank_value, DictionaryOrdering};
pub use percental::Percental;

use crate::fairshare::FairshareTree;
use crate::ids::GridUser;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A projection algorithm mapping every user's fairshare state to a scalar
/// priority factor in `[0, 1]`.
pub trait Projection: Send + Sync + std::fmt::Debug {
    /// Algorithm name for display/config.
    fn name(&self) -> &'static str;

    /// Project every user in the tree to a `[0, 1]` factor.
    fn project(&self, tree: &FairshareTree) -> BTreeMap<GridUser, f64>;

    /// Project a single user, for *path-local* algorithms whose per-user
    /// value depends only on the nodes along that user's path (Bitwise,
    /// Percental). Must be bit-identical to the corresponding entry of
    /// [`project`](Self::project). Returns `None` for global algorithms
    /// (Dictionary ordering ranks users against each other, so any change
    /// requires a full re-projection) and for users absent from the tree.
    fn project_user(&self, _tree: &FairshareTree, _user: &GridUser) -> Option<f64> {
        None
    }
}

/// Which projection algorithm to use; "the approach to use is configurable
/// and can be changed during run-time".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ProjectionKind {
    /// Rank-based dictionary (lexicographic) ordering.
    Dictionary,
    /// Bitwise merge of quantized vector elements.
    Bitwise,
    /// Product-of-shares difference ("a similar approach is used in SLURM
    /// prior to version 2.5"). The configuration used in the paper's
    /// production deployment and all §IV tests.
    #[default]
    Percental,
}

impl ProjectionKind {
    /// Instantiate the algorithm with its default parameters.
    pub fn build(self) -> Box<dyn Projection> {
        match self {
            ProjectionKind::Dictionary => Box::new(DictionaryOrdering),
            ProjectionKind::Bitwise => Box::new(BitwiseVector::default()),
            ProjectionKind::Percental => Box::new(Percental),
        }
    }

    /// All selectable algorithms.
    pub const ALL: [ProjectionKind; 3] = [
        ProjectionKind::Dictionary,
        ProjectionKind::Bitwise,
        ProjectionKind::Percental,
    ];
}

#[cfg(test)]
pub(crate) mod test_util {
    use crate::fairshare::{FairshareConfig, FairshareTree};
    use crate::ids::GridUser;
    use crate::policy::PolicyTree;
    use std::collections::BTreeMap;

    /// Compute a fairshare tree from (user, share, usage) triples on a flat
    /// policy.
    pub fn flat_tree(entries: &[(&str, f64, f64)]) -> FairshareTree {
        let policy = crate::policy::flat_policy(
            &entries.iter().map(|(n, s, _)| (*n, *s)).collect::<Vec<_>>(),
        )
        .unwrap();
        let usage: BTreeMap<GridUser, f64> = entries
            .iter()
            .map(|(n, _, u)| (GridUser::new(*n), *u))
            .collect();
        FairshareTree::compute(&policy, &usage, &FairshareConfig::default(), 0.0)
    }

    /// Group spec for nested test trees: (group, share, [(user, share, usage)]).
    pub type GroupSpec<'a> = &'a [(&'a str, f64, &'a [(&'a str, f64, f64)])];

    /// A two-level tree for isolation tests.
    pub fn nested_tree(groups: GroupSpec) -> (PolicyTree, FairshareTree) {
        use crate::policy::PolicyNode;
        let children: Vec<PolicyNode> = groups
            .iter()
            .map(|(g, gs, users)| {
                PolicyNode::group(
                    *g,
                    *gs,
                    users
                        .iter()
                        .map(|(n, s, _)| PolicyNode::user(*n, *s))
                        .collect(),
                )
            })
            .collect();
        let policy = PolicyTree::new(PolicyNode::group("root", 1.0, children)).unwrap();
        let usage: BTreeMap<GridUser, f64> = groups
            .iter()
            .flat_map(|(_, _, users)| users.iter())
            .map(|(n, _, u)| (GridUser::new(*n), *u))
            .collect();
        let tree = FairshareTree::compute(&policy, &usage, &FairshareConfig::default(), 0.0);
        (policy, tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_util::flat_tree;

    #[test]
    fn all_projections_produce_unit_range() {
        let tree = flat_tree(&[("a", 0.5, 900.0), ("b", 0.3, 50.0), ("c", 0.2, 50.0)]);
        for kind in ProjectionKind::ALL {
            let proj = kind.build();
            let values = proj.project(&tree);
            assert_eq!(values.len(), 3, "{}", proj.name());
            for (u, v) in &values {
                assert!((0.0..=1.0).contains(v), "{} {u}: {v}", proj.name());
            }
        }
    }

    #[test]
    fn all_projections_agree_on_order() {
        // b is most under-served, then c, then a.
        let tree = flat_tree(&[("a", 0.5, 900.0), ("b", 0.3, 10.0), ("c", 0.2, 90.0)]);
        for kind in ProjectionKind::ALL {
            let values = kind.build().project(&tree);
            let a = values[&GridUser::new("a")];
            let b = values[&GridUser::new("b")];
            let c = values[&GridUser::new("c")];
            assert!(b > c && c > a, "{kind:?}: a={a} b={b} c={c}");
        }
    }

    #[test]
    fn default_is_percental_like_production() {
        assert_eq!(ProjectionKind::default(), ProjectionKind::Percental);
    }
}
