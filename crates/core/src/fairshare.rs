//! The fairshare calculation algorithm (§II-A constituent 3).
//!
//! Given a policy tree and grid-wide per-user usage, the algorithm computes
//! a *fairshare tree*: for every node, the signed distance between its
//! target share and its actual usage share **relative to its siblings**.
//! Distances combine an absolute component (`policy − usage`) and a relative
//! component (normalized ratio distance) under a configurable weight `k`
//! (§IV-A-5: "the fairshare algorithm uses a configurable weight (k) between
//! absolute and relative distance calculations", with k = 0.5 in all of the
//! paper's tests).
//!
//! Per-user fairshare *vectors* (one element per level, root first) are then
//! extracted as in Figure 3.
//!
//! ## Incremental engine
//!
//! The tree is stored as an arena of [`NodeId`]-indexed nodes (plus a
//! [`PathInterner`] for the path-based API) rather than path-keyed maps, so
//! [`FairshareTree::recompute_dirty`] can re-derive state for *only the
//! subtrees named by a [`DirtySet`]*: a usage change for one user re-
//! aggregates exactly that user's root→leaf path and refreshes the sibling
//! groups along it. After any mutation sequence, the incremental state is
//! bit-identical to a from-scratch [`FairshareTree::compute`] on the same
//! inputs — enforced by a debug-build assertion inside `recompute_dirty`
//! and by property tests.

use crate::arena::{DirtySet, NodeId, PathInterner, RecomputeStats};
use crate::decay::DecayPolicy;
use crate::ids::{EntityPath, GridUser};
use crate::policy::{PolicyNode, PolicyNodeKind, PolicyTree};
use crate::vector::{FairshareVector, Resolution};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of the fairshare calculation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FairshareConfig {
    /// Weight of the relative distance component; the absolute component
    /// gets `1 − k`. The paper's tests use `k = 0.5`.
    pub k_weight: f64,
    /// Quantization resolution of vector elements.
    pub resolution: Resolution,
    /// How historical usage decays.
    pub decay: DecayPolicy,
}

impl Default for FairshareConfig {
    fn default() -> Self {
        Self {
            k_weight: 0.5,
            resolution: Resolution::PAPER,
            decay: DecayPolicy::default(),
        }
    }
}

impl FairshareConfig {
    /// Combined signed distance for a node with normalized policy share `p`
    /// and normalized usage share `u` (both within the sibling group).
    ///
    /// * relative component ∈ [−1, 1]: `(p − u) / max(p, u)` (0 when both 0);
    /// * absolute component ∈ [−1, 1]: `p − u` (≤ `p` on the positive side,
    ///   giving the paper's documented per-user bound
    ///   `max priority = k·1 + (1−k)·share`, e.g. `0.5·(1 + 0.12) = 0.56`
    ///   for a 12%-share user at k = 0.5).
    pub fn distance(&self, p: f64, u: f64) -> f64 {
        let rel = if p == u {
            0.0
        } else {
            (p - u) / p.max(u).max(f64::MIN_POSITIVE)
        };
        let abs = p - u;
        self.k_weight * rel + (1.0 - self.k_weight) * abs
    }

    /// Upper bound of a user's combined distance given its policy share:
    /// reached when the user has zero usage.
    pub fn max_priority(&self, share: f64) -> f64 {
        self.k_weight + (1.0 - self.k_weight) * share
    }
}

/// Fairshare state computed for one tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeShare {
    /// Normalized policy share within the sibling group.
    pub policy_share: f64,
    /// Normalized usage share within the sibling group.
    pub usage_share: f64,
    /// Combined signed distance (the "priority" plotted in the paper's
    /// figures for flat hierarchies).
    pub distance: f64,
    /// Quantized vector element for this level.
    pub element: f64,
}

impl NodeShare {
    fn neutral() -> Self {
        NodeShare {
            policy_share: 1.0,
            usage_share: 1.0,
            distance: 0.0,
            element: 0.0,
        }
    }

    fn bits_eq(&self, other: &NodeShare) -> bool {
        self.policy_share.to_bits() == other.policy_share.to_bits()
            && self.usage_share.to_bits() == other.usage_share.to_bits()
            && self.distance.to_bits() == other.distance.to_bits()
            && self.element.to_bits() == other.element.to_bits()
    }
}

/// One arena slot of the computed fairshare tree.
#[derive(Debug, Clone)]
struct ArenaNode {
    /// Node name (unique among siblings; mirrors the policy node).
    name: String,
    /// Parent slot; `None` for the root.
    parent: Option<NodeId>,
    /// Child slots in policy order.
    children: Vec<NodeId>,
    /// Hierarchy level (root = 0).
    level: u32,
    /// Grid identity for user leaves.
    user: Option<GridUser>,
    /// Raw (un-normalized) policy share.
    share: f64,
    /// Usage attributed directly to this node (non-zero only for users).
    own_usage: f64,
    /// Aggregated usage of this node's subtree.
    subtree_usage: f64,
    /// Derived shares/distance/element within the parent's sibling group.
    state: NodeShare,
}

/// A computed fairshare tree: arena-indexed per-node shares plus extracted
/// user vectors, supporting both full computation and dirty-subtree
/// incremental recomputation.
#[derive(Debug, Clone)]
pub struct FairshareTree {
    arena: Vec<ArenaNode>,
    interner: PathInterner,
    user_leaf: BTreeMap<GridUser, NodeId>,
    user_paths: BTreeMap<GridUser, EntityPath>,
    depth: usize,
    config: FairshareConfig,
    /// Time the tree was computed, seconds (for staleness checks).
    pub computed_at_s: f64,
}

impl FairshareTree {
    /// Compute the fairshare tree from a policy and per-user (already
    /// decayed) usage totals.
    pub fn compute(
        policy: &PolicyTree,
        usage_by_user: &BTreeMap<GridUser, f64>,
        config: &FairshareConfig,
        now_s: f64,
    ) -> Self {
        let mut tree = Self {
            arena: Vec::with_capacity(policy.node_count()),
            interner: PathInterner::new(),
            user_leaf: BTreeMap::new(),
            user_paths: BTreeMap::new(),
            depth: policy.depth(),
            config: *config,
            computed_at_s: now_s,
        };
        tree.add_policy_node(policy.root(), None, &EntityPath::root(), 0);
        tree.aggregate_usage(NodeId(0), usage_by_user);
        tree.derive_group(NodeId(0), true);
        tree
    }

    /// Recursively append `node` (and its subtree) to the arena.
    fn add_policy_node(
        &mut self,
        node: &PolicyNode,
        parent: Option<NodeId>,
        path: &EntityPath,
        level: u32,
    ) -> NodeId {
        let id = NodeId(self.arena.len() as u32);
        let user = match &node.kind {
            PolicyNodeKind::User(u) => Some(u.clone()),
            _ => None,
        };
        self.arena.push(ArenaNode {
            name: node.name.clone(),
            parent,
            children: Vec::with_capacity(node.children.len()),
            level,
            user: user.clone(),
            share: node.share,
            own_usage: 0.0,
            subtree_usage: 0.0,
            state: NodeShare::neutral(),
        });
        self.interner.insert(path.clone(), id);
        if let Some(u) = user {
            self.user_leaf.insert(u.clone(), id);
            self.user_paths.insert(u, path.clone());
        }
        for child in &node.children {
            let child_path = path.child(&child.name);
            let cid = self.add_policy_node(child, Some(id), &child_path, level + 1);
            self.arena[id.index()].children.push(cid);
        }
        id
    }

    /// Bottom-up usage aggregation: `subtree = own + Σ children` with the
    /// exact summation order of the from-scratch algorithm.
    fn aggregate_usage(&mut self, id: NodeId, usage_by_user: &BTreeMap<GridUser, f64>) -> f64 {
        let own = self.arena[id.index()]
            .user
            .as_ref()
            .and_then(|u| usage_by_user.get(u))
            .copied()
            .unwrap_or(0.0);
        let children = self.arena[id.index()].children.clone();
        let children_sum: f64 = children
            .into_iter()
            .map(|c| self.aggregate_usage(c, usage_by_user))
            .sum();
        let total = own + children_sum;
        let node = &mut self.arena[id.index()];
        node.own_usage = own;
        node.subtree_usage = total;
        total
    }

    /// Refresh the derived state of `id`'s children (one sibling group),
    /// optionally recursing over the whole subtree. Returns the children
    /// whose derived state changed in any component (shares, distance, or
    /// element) — the roots of the subtrees whose users need re-projection.
    fn derive_group(&mut self, id: NodeId, recurse: bool) -> Vec<NodeId> {
        let children = self.arena[id.index()].children.clone();
        let policy_total: f64 = children.iter().map(|&c| self.arena[c.index()].share).sum();
        let usage_total: f64 = children
            .iter()
            .map(|&c| self.arena[c.index()].subtree_usage)
            .sum();
        let mut changed = Vec::new();
        for &cid in &children {
            let child = &self.arena[cid.index()];
            let p = if policy_total > 0.0 {
                child.share / policy_total
            } else {
                0.0
            };
            let u = if usage_total > 0.0 {
                child.subtree_usage / usage_total
            } else {
                0.0
            };
            let d = self.config.distance(p, u);
            let state = NodeShare {
                policy_share: p,
                usage_share: u,
                distance: d,
                element: self.config.resolution.scale(d),
            };
            let node = &mut self.arena[cid.index()];
            if !node.state.bits_eq(&state) {
                changed.push(cid);
            }
            node.state = state;
            if recurse {
                self.derive_group(cid, true);
            }
        }
        changed
    }

    /// Incrementally re-derive fairshare state for the subtrees whose usage
    /// or policy changed, per `dirty`.
    ///
    /// `usage_by_user` is the complete usage snapshot the tree should
    /// reflect (only entries for dirty users are read); `policy` is
    /// consulted for edited shares and as the fallback for a full rebuild
    /// when the dirty set demands one (`mark_all`, or a structural mismatch
    /// between the dirty set and the arena).
    ///
    /// **Equivalence invariant:** afterwards, the tree state is bit-identical
    /// to `FairshareTree::compute(policy, usage_by_user, config, now_s)` —
    /// asserted here in debug builds.
    pub fn recompute_dirty(
        &mut self,
        policy: &PolicyTree,
        usage_by_user: &BTreeMap<GridUser, f64>,
        dirty: &DirtySet,
        now_s: f64,
    ) -> RecomputeStats {
        let stats = self.recompute_dirty_inner(policy, usage_by_user, dirty, now_s);
        #[cfg(debug_assertions)]
        {
            let fresh = Self::compute(policy, usage_by_user, &self.config, now_s);
            debug_assert!(
                self.state_equals(&fresh),
                "incremental fairshare state diverged from full recompute"
            );
        }
        stats
    }

    fn recompute_dirty_inner(
        &mut self,
        policy: &PolicyTree,
        usage_by_user: &BTreeMap<GridUser, f64>,
        dirty: &DirtySet,
        now_s: f64,
    ) -> RecomputeStats {
        if dirty.is_empty() {
            self.computed_at_s = now_s;
            return RecomputeStats::default();
        }
        if dirty.is_all() {
            return self.rebuild_full(policy, usage_by_user, now_s);
        }

        // Nodes whose subtree aggregate must be re-summed (dirty leaves plus
        // their ancestors) and sibling groups needing a derived refresh.
        let mut agg: BTreeSet<NodeId> = BTreeSet::new();
        let mut groups: BTreeSet<NodeId> = BTreeSet::new();
        for user in dirty.users() {
            match self.user_leaf.get(user).copied() {
                Some(leaf) => {
                    let value = usage_by_user.get(user).copied().unwrap_or(0.0);
                    self.arena[leaf.index()].own_usage = value;
                    let mut cur = leaf;
                    agg.insert(cur);
                    while let Some(parent) = self.arena[cur.index()].parent {
                        agg.insert(parent);
                        groups.insert(parent);
                        cur = parent;
                    }
                }
                None => {
                    // Usage from users outside the policy is ignored by the
                    // full algorithm too; but a user the *policy* knows and
                    // the arena doesn't means the structure changed under us.
                    if policy.path_of_user(user).is_some() {
                        return self.rebuild_full(policy, usage_by_user, now_s);
                    }
                }
            }
        }
        for path in dirty.paths() {
            let resolved = self
                .interner
                .get(path)
                .and_then(|id| policy.node_at(path).map(|n| (id, n.share)));
            match resolved {
                Some((id, share)) => {
                    self.arena[id.index()].share = share;
                    match self.arena[id.index()].parent {
                        Some(parent) => {
                            groups.insert(parent);
                        }
                        None => {
                            // Root share participates in no sibling group.
                        }
                    }
                }
                None => return self.rebuild_full(policy, usage_by_user, now_s),
            }
        }

        // Re-aggregate bottom-up (deepest first) so each parent re-sums
        // already-updated children, in the same order as a full pass.
        let mut by_depth: Vec<NodeId> = agg.iter().copied().collect();
        by_depth.sort_by_key(|id| std::cmp::Reverse(self.arena[id.index()].level));
        for id in &by_depth {
            let node = &self.arena[id.index()];
            let own = node.own_usage;
            let children = node.children.clone();
            let children_sum: f64 = children
                .into_iter()
                .map(|c| self.arena[c.index()].subtree_usage)
                .sum();
            self.arena[id.index()].subtree_usage = own + children_sum;
        }

        // Refresh derived shares of every affected sibling group.
        let mut shares_refreshed = 0u64;
        let mut changed_elements = Vec::new();
        for g in &groups {
            shares_refreshed += self.arena[g.index()].children.len() as u64;
            changed_elements.extend(self.derive_group(*g, false));
        }
        self.computed_at_s = now_s;
        RecomputeStats {
            full: false,
            nodes_recomputed: by_depth.len() as u64,
            shares_refreshed,
            changed_elements,
        }
    }

    fn rebuild_full(
        &mut self,
        policy: &PolicyTree,
        usage_by_user: &BTreeMap<GridUser, f64>,
        now_s: f64,
    ) -> RecomputeStats {
        *self = Self::compute(policy, usage_by_user, &self.config, now_s);
        RecomputeStats {
            full: true,
            nodes_recomputed: self.arena.len() as u64,
            shares_refreshed: self.arena.len() as u64,
            changed_elements: (0..self.arena.len() as u32).map(NodeId).collect(),
        }
    }

    /// Bit-exact state comparison against another tree (same policy shape,
    /// aggregates, and derived shares). The equivalence oracle for the
    /// incremental engine.
    pub fn state_equals(&self, other: &FairshareTree) -> bool {
        self.arena.len() == other.arena.len()
            && self.depth == other.depth
            && self.user_paths == other.user_paths
            && self.arena.iter().zip(&other.arena).all(|(a, b)| {
                a.name == b.name
                    && a.parent == b.parent
                    && a.children == b.children
                    && a.user == b.user
                    && a.share.to_bits() == b.share.to_bits()
                    && a.own_usage.to_bits() == b.own_usage.to_bits()
                    && a.subtree_usage.to_bits() == b.subtree_usage.to_bits()
                    && a.state.bits_eq(&b.state)
            })
    }

    /// Per-node share state at `path` (the root has no sibling group and
    /// reports `None`, as in the original path-keyed representation).
    pub fn node(&self, path: &EntityPath) -> Option<&NodeShare> {
        if path.is_root() {
            return None;
        }
        self.interner
            .get(path)
            .map(|id| &self.arena[id.index()].state)
    }

    /// Resolve a path to its arena id (including the root).
    pub fn node_id(&self, path: &EntityPath) -> Option<NodeId> {
        self.interner.get(path)
    }

    /// Resolve a grid user to its leaf arena id.
    pub fn user_node(&self, user: &GridUser) -> Option<NodeId> {
        self.user_leaf.get(user).copied()
    }

    /// Derived share state of an arena node.
    pub fn share_of(&self, id: NodeId) -> &NodeShare {
        &self.arena[id.index()].state
    }

    /// Leaf distance ("priority") of an arena node.
    pub fn priority_of_id(&self, id: NodeId) -> f64 {
        self.arena[id.index()].state.distance
    }

    /// Fairshare vector of the entity at an arena id, padded to tree depth.
    pub fn vector_of_id(&self, id: NodeId) -> FairshareVector {
        let mut elements = Vec::with_capacity(self.depth);
        let mut cur = Some(id);
        while let Some(c) = cur {
            let node = &self.arena[c.index()];
            if node.parent.is_some() {
                elements.push(node.state.element);
            }
            cur = node.parent;
        }
        elements.reverse();
        FairshareVector::from_elements(elements, self.config.resolution).padded(self.depth)
    }

    /// Grid users accounted under the subtree rooted at `id` (dirty-subtree
    /// re-projection support).
    pub fn users_under(&self, id: NodeId, out: &mut BTreeSet<GridUser>) {
        let node = &self.arena[id.index()];
        if let Some(u) = &node.user {
            out.insert(u.clone());
        }
        for &c in &node.children {
            self.users_under(c, out);
        }
    }

    /// Extract the fairshare vector for the entity at `path` (Figure 3):
    /// one element per level from the root's child down to the entity,
    /// padded with the balance point to the full tree depth.
    pub fn vector_at(&self, path: &EntityPath) -> Option<FairshareVector> {
        if path.is_root() {
            return Some(
                FairshareVector::from_elements(vec![], self.config.resolution).padded(self.depth),
            );
        }
        self.interner.get(path).map(|id| self.vector_of_id(id))
    }

    /// The fairshare vector of a grid user (by leaf identity).
    pub fn vector_for_user(&self, user: &GridUser) -> Option<FairshareVector> {
        self.user_leaf.get(user).map(|&id| self.vector_of_id(id))
    }

    /// The leaf distance ("priority") of a grid user.
    pub fn user_priority(&self, user: &GridUser) -> Option<f64> {
        self.user_leaf
            .get(user)
            .map(|&id| self.arena[id.index()].state.distance)
    }

    /// All users known to the tree with their paths.
    pub fn users(&self) -> impl Iterator<Item = (&GridUser, &EntityPath)> {
        self.user_paths.iter()
    }

    /// The path of one user's leaf (indexed lookup, unlike the `O(n)` policy
    /// scan in [`PolicyTree::path_of_user`]).
    pub fn path_of_user(&self, user: &GridUser) -> Option<&EntityPath> {
        self.user_paths.get(user)
    }

    /// Fairshare vectors for every user, in stable (user-sorted) order.
    pub fn all_vectors(&self) -> Vec<(GridUser, FairshareVector)> {
        self.user_leaf
            .iter()
            .map(|(u, &id)| (u.clone(), self.vector_of_id(id)))
            .collect()
    }

    /// Maximum hierarchy depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total number of arena nodes (policy nodes incl. root).
    pub fn node_count(&self) -> usize {
        self.arena.len()
    }

    /// The configuration this tree was computed with (provenance capture
    /// records it so explanations can replay the distance formula exactly).
    pub fn config(&self) -> &FairshareConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{flat_policy, PolicyNode, PolicyTree};

    fn usage(pairs: &[(&str, f64)]) -> BTreeMap<GridUser, f64> {
        pairs.iter().map(|(n, v)| (GridUser::new(*n), *v)).collect()
    }

    fn paper_flat_policy() -> PolicyTree {
        flat_policy(&[
            ("U65", 0.6525),
            ("U30", 0.3049),
            ("U3", 0.0286),
            ("Uoth", 0.0140),
        ])
        .unwrap()
    }

    #[test]
    fn balanced_usage_gives_zero_distance() {
        let policy = paper_flat_policy();
        let cfg = FairshareConfig::default();
        let total = 1000.0;
        let u = usage(&[
            ("U65", 0.6525 * total),
            ("U30", 0.3049 * total),
            ("U3", 0.0286 * total),
            ("Uoth", 0.0140 * total),
        ]);
        let t = FairshareTree::compute(&policy, &u, &cfg, 0.0);
        for user in ["U65", "U30", "U3", "Uoth"] {
            let d = t.user_priority(&GridUser::new(user)).unwrap();
            assert!(d.abs() < 1e-9, "{user}: {d}");
            let v = t.vector_for_user(&GridUser::new(user)).unwrap();
            assert!((v.elements()[0] - cfg.resolution.balance()).abs() < 1e-5);
        }
    }

    #[test]
    fn paper_bursty_test_priority_bound() {
        // §IV-A-5: a 12%-share user with zero usage peaks at 0.5·(1+0.12)=0.56.
        let policy =
            flat_policy(&[("U65", 0.47), ("U30", 0.385), ("U3", 0.12), ("Uoth", 0.025)]).unwrap();
        let cfg = FairshareConfig::default();
        let u = usage(&[("U65", 500.0), ("U30", 400.0), ("Uoth", 30.0)]); // U3 idle
        let t = FairshareTree::compute(&policy, &u, &cfg, 0.0);
        let d = t.user_priority(&GridUser::new("U3")).unwrap();
        assert!((d - 0.56).abs() < 1e-9, "priority {d}");
        assert!((cfg.max_priority(0.12) - 0.56).abs() < 1e-12);
    }

    #[test]
    fn overuse_gives_negative_distance() {
        let policy = flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap();
        let cfg = FairshareConfig::default();
        let t = FairshareTree::compute(&policy, &usage(&[("a", 900.0), ("b", 100.0)]), &cfg, 0.0);
        assert!(t.user_priority(&GridUser::new("a")).unwrap() < 0.0);
        assert!(t.user_priority(&GridUser::new("b")).unwrap() > 0.0);
    }

    #[test]
    fn under_served_user_ranks_first() {
        let policy = paper_flat_policy();
        let cfg = FairshareConfig::default();
        // U30 has consumed nothing; everyone else over-consumed.
        let u = usage(&[("U65", 800.0), ("U3", 150.0), ("Uoth", 50.0)]);
        let t = FairshareTree::compute(&policy, &u, &cfg, 0.0);
        let v30 = t.vector_for_user(&GridUser::new("U30")).unwrap();
        for other in ["U65", "U3", "Uoth"] {
            let vo = t.vector_for_user(&GridUser::new(other)).unwrap();
            assert_eq!(v30.compare(&vo), std::cmp::Ordering::Greater, "vs {other}");
        }
    }

    #[test]
    fn subgroup_isolation_in_tree() {
        // Figure 3 shape: usage changes inside /HP must not move /LQ's element.
        let policy = PolicyTree::new(PolicyNode::group(
            "root",
            1.0,
            vec![
                PolicyNode::group(
                    "HP",
                    0.7,
                    vec![PolicyNode::user("u1", 0.5), PolicyNode::user("u2", 0.5)],
                ),
                PolicyNode::user("LQ", 0.3),
            ],
        ))
        .unwrap();
        let cfg = FairshareConfig::default();
        let t1 = FairshareTree::compute(
            &policy,
            &usage(&[("u1", 700.0), ("u2", 0.0), ("LQ", 300.0)]),
            &cfg,
            0.0,
        );
        let t2 = FairshareTree::compute(
            &policy,
            &usage(&[("u1", 0.0), ("u2", 700.0), ("LQ", 300.0)]),
            &cfg,
            0.0,
        );
        // /HP's aggregate usage is the same, so /LQ's and /HP's first-level
        // elements are unchanged; only the intra-HP level flips.
        let lq = EntityPath::parse("/LQ");
        let hp = EntityPath::parse("/HP");
        assert_eq!(t1.node(&lq).unwrap().element, t2.node(&lq).unwrap().element);
        assert_eq!(t1.node(&hp).unwrap().element, t2.node(&hp).unwrap().element);
        let u1 = EntityPath::parse("/HP/u1");
        assert!(t1.node(&u1).unwrap().distance < 0.0);
        assert!(t2.node(&u1).unwrap().distance > 0.0);
    }

    #[test]
    fn short_path_padded_with_balance() {
        let policy = PolicyTree::new(PolicyNode::group(
            "root",
            1.0,
            vec![
                PolicyNode::group("HP", 0.7, vec![PolicyNode::user("u1", 1.0)]),
                PolicyNode::user("LQ", 0.3),
            ],
        ))
        .unwrap();
        let cfg = FairshareConfig::default();
        let t = FairshareTree::compute(&policy, &usage(&[("u1", 10.0)]), &cfg, 0.0);
        let v = t.vector_for_user(&GridUser::new("LQ")).unwrap();
        assert_eq!(v.depth(), 2);
        assert_eq!(v.elements()[1], cfg.resolution.balance());
    }

    #[test]
    fn zero_usage_distance_is_max_priority() {
        let policy = flat_policy(&[("a", 0.25), ("b", 0.75)]).unwrap();
        let cfg = FairshareConfig::default();
        let t = FairshareTree::compute(&policy, &BTreeMap::new(), &cfg, 0.0);
        // No usage anywhere: every user sits at its own maximum priority.
        let da = t.user_priority(&GridUser::new("a")).unwrap();
        assert!((da - cfg.max_priority(0.25)).abs() < 1e-12, "{da}");
    }

    #[test]
    fn k_weight_extremes() {
        // k = 1: purely relative; k = 0: purely absolute.
        let rel_only = FairshareConfig {
            k_weight: 1.0,
            ..Default::default()
        };
        let abs_only = FairshareConfig {
            k_weight: 0.0,
            ..Default::default()
        };
        assert!((rel_only.distance(0.1, 0.0) - 1.0).abs() < 1e-12);
        assert!((abs_only.distance(0.1, 0.0) - 0.1).abs() < 1e-12);
        assert!((rel_only.distance(0.1, 0.2) + 0.5).abs() < 1e-12);
        assert!((abs_only.distance(0.1, 0.2) + 0.1).abs() < 1e-12);
    }

    #[test]
    fn unknown_user_has_no_priority() {
        let policy = flat_policy(&[("a", 1.0)]).unwrap();
        let t = FairshareTree::compute(&policy, &BTreeMap::new(), &FairshareConfig::default(), 0.0);
        assert!(t.user_priority(&GridUser::new("ghost")).is_none());
        assert!(t.vector_for_user(&GridUser::new("ghost")).is_none());
    }

    // ---- incremental engine ----

    fn deep_policy() -> PolicyTree {
        // root → g0..g3 → 4 users each (depth 2, 21 nodes).
        PolicyTree::new(PolicyNode::group(
            "root",
            1.0,
            (0..4)
                .map(|g| {
                    PolicyNode::group(
                        format!("g{g}"),
                        1.0 + g as f64,
                        (0..4)
                            .map(|u| PolicyNode::user(format!("g{g}u{u}"), 1.0 + u as f64))
                            .collect(),
                    )
                })
                .collect(),
        ))
        .unwrap()
    }

    #[test]
    fn single_user_update_recomputes_only_the_path() {
        let policy = deep_policy();
        let cfg = FairshareConfig::default();
        let mut u = usage(&[("g0u0", 10.0), ("g1u2", 40.0), ("g3u3", 25.0)]);
        let mut t = FairshareTree::compute(&policy, &u, &cfg, 0.0);
        u.insert(GridUser::new("g1u2"), 90.0);
        let mut dirty = DirtySet::new();
        dirty.mark_user(GridUser::new("g1u2"));
        let stats = t.recompute_dirty(&policy, &u, &dirty, 1.0);
        assert!(!stats.full);
        // Exactly the root→leaf path: leaf, its group, the root.
        assert_eq!(stats.nodes_recomputed, 3);
        // Sibling groups refreshed: root's 4 groups + g1's 4 users.
        assert_eq!(stats.shares_refreshed, 8);
        // Equivalence (also enforced by the debug assertion inside).
        let fresh = FairshareTree::compute(&policy, &u, &cfg, 1.0);
        assert!(t.state_equals(&fresh));
    }

    #[test]
    fn empty_dirty_set_is_a_noop() {
        let policy = deep_policy();
        let cfg = FairshareConfig::default();
        let u = usage(&[("g0u0", 10.0)]);
        let mut t = FairshareTree::compute(&policy, &u, &cfg, 0.0);
        let stats = t.recompute_dirty(&policy, &u, &DirtySet::new(), 5.0);
        assert_eq!(stats.nodes_recomputed, 0);
        assert_eq!(stats.shares_refreshed, 0);
        assert_eq!(t.computed_at_s, 5.0);
    }

    #[test]
    fn share_edit_refreshes_one_sibling_group() {
        let mut policy = deep_policy();
        let cfg = FairshareConfig::default();
        let u = usage(&[("g0u0", 10.0), ("g2u1", 30.0)]);
        let mut t = FairshareTree::compute(&policy, &u, &cfg, 0.0);
        let path = EntityPath::parse("/g2/g2u1");
        policy.set_share(&path, 9.0).unwrap();
        let mut dirty = DirtySet::new();
        dirty.mark_path(path);
        let stats = t.recompute_dirty(&policy, &u, &dirty, 1.0);
        assert!(!stats.full);
        assert_eq!(stats.nodes_recomputed, 0);
        assert_eq!(stats.shares_refreshed, 4); // g2's sibling group only
        assert!(t.state_equals(&FairshareTree::compute(&policy, &u, &cfg, 1.0)));
    }

    #[test]
    fn mark_all_falls_back_to_full_rebuild() {
        let policy = deep_policy();
        let cfg = FairshareConfig::default();
        let u = usage(&[("g0u0", 10.0)]);
        let mut t = FairshareTree::compute(&policy, &u, &cfg, 0.0);
        let mut dirty = DirtySet::new();
        dirty.mark_all();
        let stats = t.recompute_dirty(&policy, &u, &dirty, 2.0);
        assert!(stats.full);
        assert_eq!(stats.nodes_recomputed, t.node_count() as u64);
    }

    #[test]
    fn structural_mismatch_triggers_full_rebuild() {
        // A user the policy knows but the arena doesn't: rebuild.
        let policy_v1 = flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap();
        let policy_v2 = flat_policy(&[("a", 0.5), ("b", 0.3), ("c", 0.2)]).unwrap();
        let cfg = FairshareConfig::default();
        let mut u = usage(&[("a", 5.0)]);
        let mut t = FairshareTree::compute(&policy_v1, &u, &cfg, 0.0);
        u.insert(GridUser::new("c"), 7.0);
        let mut dirty = DirtySet::new();
        dirty.mark_user(GridUser::new("c"));
        let stats = t.recompute_dirty(&policy_v2, &u, &dirty, 1.0);
        assert!(stats.full);
        assert!(t.user_priority(&GridUser::new("c")).is_some());
    }

    #[test]
    fn changed_elements_name_exactly_the_moved_nodes() {
        let policy = deep_policy();
        let cfg = FairshareConfig::default();
        let mut u = usage(&[("g0u0", 10.0), ("g1u2", 40.0)]);
        let mut t = FairshareTree::compute(&policy, &u, &cfg, 0.0);
        u.insert(GridUser::new("g1u2"), 41.0);
        let mut dirty = DirtySet::new();
        dirty.mark_user(GridUser::new("g1u2"));
        let stats = t.recompute_dirty(&policy, &u, &dirty, 1.0);
        // Every changed node's derived state really differs from a tree
        // computed on the old usage. Ids are stable across recompute (same
        // policy), so compare by id.
        u.insert(GridUser::new("g1u2"), 40.0);
        let old = FairshareTree::compute(&policy, &u, &cfg, 0.0);
        assert!(!stats.changed_elements.is_empty());
        for id in &stats.changed_elements {
            assert!(!t.share_of(*id).bits_eq(old.share_of(*id)));
        }
        // And every unchanged node's state is bit-identical to the old tree.
        let changed: BTreeSet<NodeId> = stats.changed_elements.iter().copied().collect();
        for i in 0..t.node_count() as u32 {
            if !changed.contains(&NodeId(i)) {
                assert!(t.share_of(NodeId(i)).bits_eq(old.share_of(NodeId(i))));
            }
        }
    }

    #[test]
    fn vectors_via_ids_match_paths() {
        let policy = deep_policy();
        let cfg = FairshareConfig::default();
        let u = usage(&[("g0u0", 10.0), ("g1u2", 40.0)]);
        let t = FairshareTree::compute(&policy, &u, &cfg, 0.0);
        for (user, path) in policy.users().iter().map(|(p, u)| (u.clone(), p.clone())) {
            let id = t.user_node(&user).unwrap();
            assert_eq!(t.node_id(&path), Some(id));
            assert_eq!(
                t.vector_of_id(id).elements(),
                t.vector_at(&path).unwrap().elements()
            );
            assert_eq!(t.priority_of_id(id), t.user_priority(&user).unwrap());
        }
        let mut users = BTreeSet::new();
        t.users_under(NodeId(0), &mut users);
        assert_eq!(users.len(), 16);
    }
}
