//! The fairshare calculation algorithm (§II-A constituent 3).
//!
//! Given a policy tree and grid-wide per-user usage, the algorithm computes
//! a *fairshare tree*: for every node, the signed distance between its
//! target share and its actual usage share **relative to its siblings**.
//! Distances combine an absolute component (`policy − usage`) and a relative
//! component (normalized ratio distance) under a configurable weight `k`
//! (§IV-A-5: "the fairshare algorithm uses a configurable weight (k) between
//! absolute and relative distance calculations", with k = 0.5 in all of the
//! paper's tests).
//!
//! Per-user fairshare *vectors* (one element per level, root first) are then
//! extracted as in Figure 3.

use crate::decay::DecayPolicy;
use crate::ids::{EntityPath, GridUser};
use crate::policy::{PolicyNode, PolicyTree};
use crate::vector::{FairshareVector, Resolution};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of the fairshare calculation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FairshareConfig {
    /// Weight of the relative distance component; the absolute component
    /// gets `1 − k`. The paper's tests use `k = 0.5`.
    pub k_weight: f64,
    /// Quantization resolution of vector elements.
    pub resolution: Resolution,
    /// How historical usage decays.
    pub decay: DecayPolicy,
}

impl Default for FairshareConfig {
    fn default() -> Self {
        Self {
            k_weight: 0.5,
            resolution: Resolution::PAPER,
            decay: DecayPolicy::default(),
        }
    }
}

impl FairshareConfig {
    /// Combined signed distance for a node with normalized policy share `p`
    /// and normalized usage share `u` (both within the sibling group).
    ///
    /// * relative component ∈ [−1, 1]: `(p − u) / max(p, u)` (0 when both 0);
    /// * absolute component ∈ [−1, 1]: `p − u` (≤ `p` on the positive side,
    ///   giving the paper's documented per-user bound
    ///   `max priority = k·1 + (1−k)·share`, e.g. `0.5·(1 + 0.12) = 0.56`
    ///   for a 12%-share user at k = 0.5).
    pub fn distance(&self, p: f64, u: f64) -> f64 {
        let rel = if p == u {
            0.0
        } else {
            (p - u) / p.max(u).max(f64::MIN_POSITIVE)
        };
        let abs = p - u;
        self.k_weight * rel + (1.0 - self.k_weight) * abs
    }

    /// Upper bound of a user's combined distance given its policy share:
    /// reached when the user has zero usage.
    pub fn max_priority(&self, share: f64) -> f64 {
        self.k_weight + (1.0 - self.k_weight) * share
    }
}

/// Fairshare state computed for one tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeShare {
    /// Normalized policy share within the sibling group.
    pub policy_share: f64,
    /// Normalized usage share within the sibling group.
    pub usage_share: f64,
    /// Combined signed distance (the "priority" plotted in the paper's
    /// figures for flat hierarchies).
    pub distance: f64,
    /// Quantized vector element for this level.
    pub element: f64,
}

/// A computed fairshare tree: per-node shares plus extracted user vectors.
#[derive(Debug, Clone)]
pub struct FairshareTree {
    nodes: BTreeMap<EntityPath, NodeShare>,
    user_paths: BTreeMap<GridUser, EntityPath>,
    depth: usize,
    resolution: Resolution,
    /// Time the tree was computed, seconds (for staleness checks).
    pub computed_at_s: f64,
}

impl FairshareTree {
    /// Compute the fairshare tree from a policy and per-user (already
    /// decayed) usage totals.
    pub fn compute(
        policy: &PolicyTree,
        usage_by_user: &BTreeMap<GridUser, f64>,
        config: &FairshareConfig,
        now_s: f64,
    ) -> Self {
        let mut nodes = BTreeMap::new();
        // Total usage of each subtree, indexed by path.
        let mut subtree_usage: BTreeMap<EntityPath, f64> = BTreeMap::new();
        accumulate_usage(
            policy.root(),
            &EntityPath::root(),
            usage_by_user,
            &mut subtree_usage,
        );
        walk(
            policy.root(),
            &EntityPath::root(),
            &subtree_usage,
            config,
            &mut nodes,
        );
        let user_paths = policy
            .users()
            .into_iter()
            .map(|(p, u)| (u, p))
            .collect();
        Self {
            nodes,
            user_paths,
            depth: policy.depth(),
            resolution: config.resolution,
            computed_at_s: now_s,
        }
    }

    /// Per-node share state at `path`.
    pub fn node(&self, path: &EntityPath) -> Option<&NodeShare> {
        self.nodes.get(path)
    }

    /// Extract the fairshare vector for the entity at `path` (Figure 3):
    /// one element per level from the root's child down to the entity,
    /// padded with the balance point to the full tree depth.
    pub fn vector_at(&self, path: &EntityPath) -> Option<FairshareVector> {
        if path.is_root() {
            return Some(
                FairshareVector::from_elements(vec![], self.resolution).padded(self.depth),
            );
        }
        let mut elements = Vec::with_capacity(self.depth);
        let mut prefix = EntityPath::root();
        for comp in path.components() {
            prefix = prefix.child(comp);
            elements.push(self.nodes.get(&prefix)?.element);
        }
        Some(FairshareVector::from_elements(elements, self.resolution).padded(self.depth))
    }

    /// The fairshare vector of a grid user (by leaf identity).
    pub fn vector_for_user(&self, user: &GridUser) -> Option<FairshareVector> {
        self.vector_at(self.user_paths.get(user)?)
    }

    /// The leaf distance ("priority") of a grid user.
    pub fn user_priority(&self, user: &GridUser) -> Option<f64> {
        let path = self.user_paths.get(user)?;
        self.nodes.get(path).map(|n| n.distance)
    }

    /// All users known to the tree with their paths.
    pub fn users(&self) -> impl Iterator<Item = (&GridUser, &EntityPath)> {
        self.user_paths.iter()
    }

    /// Fairshare vectors for every user, in stable (user-sorted) order.
    pub fn all_vectors(&self) -> Vec<(GridUser, FairshareVector)> {
        self.user_paths
            .iter()
            .filter_map(|(u, p)| self.vector_at(p).map(|v| (u.clone(), v)))
            .collect()
    }

    /// Maximum hierarchy depth.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

fn accumulate_usage(
    node: &PolicyNode,
    path: &EntityPath,
    usage_by_user: &BTreeMap<GridUser, f64>,
    out: &mut BTreeMap<EntityPath, f64>,
) -> f64 {
    let own = match &node.kind {
        crate::policy::PolicyNodeKind::User(u) => {
            usage_by_user.get(u).copied().unwrap_or(0.0)
        }
        _ => 0.0,
    };
    let children_sum: f64 = node
        .children
        .iter()
        .map(|c| accumulate_usage(c, &path.child(&c.name), usage_by_user, out))
        .sum();
    let total = own + children_sum;
    out.insert(path.clone(), total);
    total
}

fn walk(
    node: &PolicyNode,
    path: &EntityPath,
    subtree_usage: &BTreeMap<EntityPath, f64>,
    config: &FairshareConfig,
    out: &mut BTreeMap<EntityPath, NodeShare>,
) {
    let policy_total: f64 = node.children.iter().map(|c| c.share).sum();
    let usage_total: f64 = node
        .children
        .iter()
        .map(|c| subtree_usage[&path.child(&c.name)])
        .sum();
    for child in &node.children {
        let child_path = path.child(&child.name);
        let p = if policy_total > 0.0 {
            child.share / policy_total
        } else {
            0.0
        };
        let u = if usage_total > 0.0 {
            subtree_usage[&child_path] / usage_total
        } else {
            0.0
        };
        let d = config.distance(p, u);
        out.insert(
            child_path.clone(),
            NodeShare {
                policy_share: p,
                usage_share: u,
                distance: d,
                element: config.resolution.scale(d),
            },
        );
        walk(child, &child_path, subtree_usage, config, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{flat_policy, PolicyNode, PolicyTree};

    fn usage(pairs: &[(&str, f64)]) -> BTreeMap<GridUser, f64> {
        pairs
            .iter()
            .map(|(n, v)| (GridUser::new(*n), *v))
            .collect()
    }

    fn paper_flat_policy() -> PolicyTree {
        flat_policy(&[
            ("U65", 0.6525),
            ("U30", 0.3049),
            ("U3", 0.0286),
            ("Uoth", 0.0140),
        ])
        .unwrap()
    }

    #[test]
    fn balanced_usage_gives_zero_distance() {
        let policy = paper_flat_policy();
        let cfg = FairshareConfig::default();
        let total = 1000.0;
        let u = usage(&[
            ("U65", 0.6525 * total),
            ("U30", 0.3049 * total),
            ("U3", 0.0286 * total),
            ("Uoth", 0.0140 * total),
        ]);
        let t = FairshareTree::compute(&policy, &u, &cfg, 0.0);
        for user in ["U65", "U30", "U3", "Uoth"] {
            let d = t.user_priority(&GridUser::new(user)).unwrap();
            assert!(d.abs() < 1e-9, "{user}: {d}");
            let v = t.vector_for_user(&GridUser::new(user)).unwrap();
            assert!((v.elements()[0] - cfg.resolution.balance()).abs() < 1e-5);
        }
    }

    #[test]
    fn paper_bursty_test_priority_bound() {
        // §IV-A-5: a 12%-share user with zero usage peaks at 0.5·(1+0.12)=0.56.
        let policy = flat_policy(&[("U65", 0.47), ("U30", 0.385), ("U3", 0.12), ("Uoth", 0.025)])
            .unwrap();
        let cfg = FairshareConfig::default();
        let u = usage(&[("U65", 500.0), ("U30", 400.0), ("Uoth", 30.0)]); // U3 idle
        let t = FairshareTree::compute(&policy, &u, &cfg, 0.0);
        let d = t.user_priority(&GridUser::new("U3")).unwrap();
        assert!((d - 0.56).abs() < 1e-9, "priority {d}");
        assert!((cfg.max_priority(0.12) - 0.56).abs() < 1e-12);
    }

    #[test]
    fn overuse_gives_negative_distance() {
        let policy = flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap();
        let cfg = FairshareConfig::default();
        let t = FairshareTree::compute(&policy, &usage(&[("a", 900.0), ("b", 100.0)]), &cfg, 0.0);
        assert!(t.user_priority(&GridUser::new("a")).unwrap() < 0.0);
        assert!(t.user_priority(&GridUser::new("b")).unwrap() > 0.0);
    }

    #[test]
    fn under_served_user_ranks_first() {
        let policy = paper_flat_policy();
        let cfg = FairshareConfig::default();
        // U30 has consumed nothing; everyone else over-consumed.
        let u = usage(&[("U65", 800.0), ("U3", 150.0), ("Uoth", 50.0)]);
        let t = FairshareTree::compute(&policy, &u, &cfg, 0.0);
        let v30 = t.vector_for_user(&GridUser::new("U30")).unwrap();
        for other in ["U65", "U3", "Uoth"] {
            let vo = t.vector_for_user(&GridUser::new(other)).unwrap();
            assert_eq!(v30.compare(&vo), std::cmp::Ordering::Greater, "vs {other}");
        }
    }

    #[test]
    fn subgroup_isolation_in_tree() {
        // Figure 3 shape: usage changes inside /HP must not move /LQ's element.
        let policy = PolicyTree::new(PolicyNode::group(
            "root",
            1.0,
            vec![
                PolicyNode::group(
                    "HP",
                    0.7,
                    vec![PolicyNode::user("u1", 0.5), PolicyNode::user("u2", 0.5)],
                ),
                PolicyNode::user("LQ", 0.3),
            ],
        ))
        .unwrap();
        let cfg = FairshareConfig::default();
        let t1 = FairshareTree::compute(
            &policy,
            &usage(&[("u1", 700.0), ("u2", 0.0), ("LQ", 300.0)]),
            &cfg,
            0.0,
        );
        let t2 = FairshareTree::compute(
            &policy,
            &usage(&[("u1", 0.0), ("u2", 700.0), ("LQ", 300.0)]),
            &cfg,
            0.0,
        );
        // /HP's aggregate usage is the same, so /LQ's and /HP's first-level
        // elements are unchanged; only the intra-HP level flips.
        let lq = EntityPath::parse("/LQ");
        let hp = EntityPath::parse("/HP");
        assert_eq!(t1.node(&lq).unwrap().element, t2.node(&lq).unwrap().element);
        assert_eq!(t1.node(&hp).unwrap().element, t2.node(&hp).unwrap().element);
        let u1 = EntityPath::parse("/HP/u1");
        assert!(t1.node(&u1).unwrap().distance < 0.0);
        assert!(t2.node(&u1).unwrap().distance > 0.0);
    }

    #[test]
    fn short_path_padded_with_balance() {
        let policy = PolicyTree::new(PolicyNode::group(
            "root",
            1.0,
            vec![
                PolicyNode::group(
                    "HP",
                    0.7,
                    vec![PolicyNode::user("u1", 1.0)],
                ),
                PolicyNode::user("LQ", 0.3),
            ],
        ))
        .unwrap();
        let cfg = FairshareConfig::default();
        let t = FairshareTree::compute(&policy, &usage(&[("u1", 10.0)]), &cfg, 0.0);
        let v = t.vector_for_user(&GridUser::new("LQ")).unwrap();
        assert_eq!(v.depth(), 2);
        assert_eq!(v.elements()[1], cfg.resolution.balance());
    }

    #[test]
    fn zero_usage_distance_is_max_priority() {
        let policy = flat_policy(&[("a", 0.25), ("b", 0.75)]).unwrap();
        let cfg = FairshareConfig::default();
        let t = FairshareTree::compute(&policy, &BTreeMap::new(), &cfg, 0.0);
        // No usage anywhere: every user sits at its own maximum priority.
        let da = t.user_priority(&GridUser::new("a")).unwrap();
        assert!((da - cfg.max_priority(0.25)).abs() < 1e-12, "{da}");
    }

    #[test]
    fn k_weight_extremes() {
        // k = 1: purely relative; k = 0: purely absolute.
        let rel_only = FairshareConfig {
            k_weight: 1.0,
            ..Default::default()
        };
        let abs_only = FairshareConfig {
            k_weight: 0.0,
            ..Default::default()
        };
        assert!((rel_only.distance(0.1, 0.0) - 1.0).abs() < 1e-12);
        assert!((abs_only.distance(0.1, 0.0) - 0.1).abs() < 1e-12);
        assert!((rel_only.distance(0.1, 0.2) + 0.5).abs() < 1e-12);
        assert!((abs_only.distance(0.1, 0.2) + 0.1).abs() < 1e-12);
    }

    #[test]
    fn unknown_user_has_no_priority() {
        let policy = flat_policy(&[("a", 1.0)]).unwrap();
        let t = FairshareTree::compute(
            &policy,
            &BTreeMap::new(),
            &FairshareConfig::default(),
            0.0,
        );
        assert!(t.user_priority(&GridUser::new("ghost")).is_none());
        assert!(t.vector_for_user(&GridUser::new("ghost")).is_none());
    }
}
