//! Hierarchical, tree-based usage share policies (§II-A constituent 1).
//!
//! A policy tree assigns each user, project, or VO a *target usage share*,
//! recursively subdividable into subgroups. Globally managed sub-policies can
//! be **mounted** into a locally administered root: a site admin assigns,
//! say, 30% of the cluster to a grid, and the grid's own PDS supplies how
//! that 30% subdivides — without the site admin managing grid-internal
//! shares.

use crate::ids::{EntityPath, GridUser};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Errors raised by policy construction and mounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// A node share was non-finite or negative.
    InvalidShare(String),
    /// Duplicate child name under one parent.
    DuplicateChild(String),
    /// Mount target path does not exist or is not a mount point.
    NoSuchMountPoint(String),
    /// The path names no node in the tree.
    NoSuchPath(String),
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::InvalidShare(n) => write!(f, "invalid share on node {n}"),
            PolicyError::DuplicateChild(n) => write!(f, "duplicate child name {n}"),
            PolicyError::NoSuchMountPoint(p) => write!(f, "no mount point at {p}"),
            PolicyError::NoSuchPath(p) => write!(f, "no policy node at {p}"),
        }
    }
}

impl std::error::Error for PolicyError {}

/// What a policy node represents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyNodeKind {
    /// An interior grouping (VO, project, research group).
    Group,
    /// A leaf user entity, carrying the grid identity it accounts for.
    User(GridUser),
    /// A mount point: a slot for a remotely managed sub-policy. Until
    /// resolved, it behaves as an empty group.
    MountPoint {
        /// Identifies the remote PDS / policy source expected here.
        source: String,
    },
}

/// One node of a policy tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyNode {
    /// Node name; unique among siblings.
    pub name: String,
    /// Raw (un-normalized) target share weight; ≥ 0.
    pub share: f64,
    /// Node semantics.
    pub kind: PolicyNodeKind,
    /// Child nodes (empty for users and unresolved mount points).
    pub children: Vec<PolicyNode>,
}

impl PolicyNode {
    /// A group node.
    pub fn group(name: impl Into<String>, share: f64, children: Vec<PolicyNode>) -> Self {
        Self {
            name: name.into(),
            share,
            kind: PolicyNodeKind::Group,
            children,
        }
    }

    /// A user leaf whose name doubles as its grid identity.
    pub fn user(name: impl Into<String>, share: f64) -> Self {
        let name = name.into();
        Self {
            share,
            kind: PolicyNodeKind::User(GridUser::new(name.clone())),
            children: Vec::new(),
            name,
        }
    }

    /// A user leaf with an explicit grid identity.
    pub fn user_with_identity(name: impl Into<String>, share: f64, identity: GridUser) -> Self {
        Self {
            name: name.into(),
            share,
            kind: PolicyNodeKind::User(identity),
            children: Vec::new(),
        }
    }

    /// A mount point for a remotely supplied sub-policy.
    pub fn mount_point(name: impl Into<String>, share: f64, source: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            share,
            kind: PolicyNodeKind::MountPoint {
                source: source.into(),
            },
            children: Vec::new(),
        }
    }
}

/// A complete share policy: a named tree with validation and mounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyTree {
    root: PolicyNode,
    /// Monotonically increasing version, bumped on every mutation; lets
    /// downstream services (UMS/FCS) detect policy changes cheaply.
    version: u64,
}

impl PolicyTree {
    /// Build a policy tree from a root node, validating shares and name
    /// uniqueness throughout.
    pub fn new(root: PolicyNode) -> Result<Self, PolicyError> {
        validate(&root)?;
        Ok(Self { root, version: 1 })
    }

    /// The root node.
    pub fn root(&self) -> &PolicyNode {
        &self.root
    }

    /// Current policy version (bumped on mount/update).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Find a node by path (root = empty path).
    pub fn node_at(&self, path: &EntityPath) -> Option<&PolicyNode> {
        let mut node = &self.root;
        for comp in path.components() {
            node = node.children.iter().find(|c| &c.name == comp)?;
        }
        Some(node)
    }

    /// Mount a sub-policy at the named mount point. The mounted tree's root
    /// children become the mount node's children; the mount node keeps its
    /// locally assigned share ("local administrations retain control").
    pub fn mount(&mut self, at: &EntityPath, subtree: &PolicyTree) -> Result<(), PolicyError> {
        let node = node_at_mut(&mut self.root, at)
            .ok_or_else(|| PolicyError::NoSuchMountPoint(at.to_string()))?;
        if !matches!(node.kind, PolicyNodeKind::MountPoint { .. }) {
            return Err(PolicyError::NoSuchMountPoint(at.to_string()));
        }
        node.children = subtree.root.children.clone();
        validate(&self.root)?;
        self.version += 1;
        Ok(())
    }

    /// Replace the share of the node at `path` (run-time policy change, as
    /// exercised by the paper's non-optimal policy test).
    pub fn set_share(&mut self, path: &EntityPath, share: f64) -> Result<(), PolicyError> {
        if !(share.is_finite() && share >= 0.0) {
            return Err(PolicyError::InvalidShare(path.to_string()));
        }
        let node = node_at_mut(&mut self.root, path)
            .ok_or_else(|| PolicyError::NoSuchPath(path.to_string()))?;
        node.share = share;
        self.version += 1;
        Ok(())
    }

    /// Normalized target share of each child of `path` (shares of siblings
    /// sum to 1; returns an empty map for leaves and zero-weight groups).
    pub fn normalized_children(&self, path: &EntityPath) -> BTreeMap<String, f64> {
        let Some(node) = self.node_at(path) else {
            return BTreeMap::new();
        };
        let total: f64 = node.children.iter().map(|c| c.share).sum();
        if total <= 0.0 {
            return BTreeMap::new();
        }
        node.children
            .iter()
            .map(|c| (c.name.clone(), c.share / total))
            .collect()
    }

    /// The *absolute* target share of the entity at `path`: the product of
    /// normalized shares along the path (the "total target share" of the
    /// percental projection, §III-C).
    pub fn absolute_share(&self, path: &EntityPath) -> Option<f64> {
        let mut node = &self.root;
        let mut share = 1.0;
        for comp in path.components() {
            let total: f64 = node.children.iter().map(|c| c.share).sum();
            let child = node.children.iter().find(|c| &c.name == comp)?;
            if total <= 0.0 {
                return Some(0.0);
            }
            share *= child.share / total;
            node = child;
        }
        Some(share)
    }

    /// Paths of all user leaves with their grid identities.
    pub fn users(&self) -> Vec<(EntityPath, GridUser)> {
        let mut out = Vec::new();
        collect_users(&self.root, &EntityPath::root(), &mut out);
        out
    }

    /// Locate the path of the leaf accounting for the given grid user.
    pub fn path_of_user(&self, user: &GridUser) -> Option<EntityPath> {
        self.users()
            .into_iter()
            .find(|(_, u)| u == user)
            .map(|(p, _)| p)
    }

    /// Maximum leaf depth of the tree.
    pub fn depth(&self) -> usize {
        fn depth_of(n: &PolicyNode) -> usize {
            1 + n.children.iter().map(depth_of).max().unwrap_or(0)
        }
        depth_of(&self.root) - 1
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        fn count(n: &PolicyNode) -> usize {
            1 + n.children.iter().map(count).sum::<usize>()
        }
        count(&self.root)
    }
}

fn node_at_mut<'a>(root: &'a mut PolicyNode, path: &EntityPath) -> Option<&'a mut PolicyNode> {
    let mut node = root;
    for comp in path.components() {
        node = node.children.iter_mut().find(|c| &c.name == comp)?;
    }
    Some(node)
}

fn validate(node: &PolicyNode) -> Result<(), PolicyError> {
    if !(node.share.is_finite() && node.share >= 0.0) {
        return Err(PolicyError::InvalidShare(node.name.clone()));
    }
    let mut seen = std::collections::BTreeSet::new();
    for c in &node.children {
        if !seen.insert(&c.name) {
            return Err(PolicyError::DuplicateChild(c.name.clone()));
        }
        validate(c)?;
    }
    Ok(())
}

fn collect_users(node: &PolicyNode, path: &EntityPath, out: &mut Vec<(EntityPath, GridUser)>) {
    if let PolicyNodeKind::User(u) = &node.kind {
        out.push((path.clone(), u.clone()));
    }
    for c in &node.children {
        collect_users(c, &path.child(&c.name), out);
    }
}

/// Convenience: a flat single-level policy over plain users with the given
/// (name, share) pairs — the shape used in the paper's evaluation where the
/// four model users U65/U30/U3/Uoth sit directly under the root.
pub fn flat_policy(users: &[(&str, f64)]) -> Result<PolicyTree, PolicyError> {
    PolicyTree::new(PolicyNode::group(
        "root",
        1.0,
        users
            .iter()
            .map(|(n, s)| PolicyNode::user(*n, *s))
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure3_tree() -> PolicyTree {
        // Figure 3's shape: root → {HP → {u1, u2}, LQ}.
        PolicyTree::new(PolicyNode::group(
            "root",
            1.0,
            vec![
                PolicyNode::group(
                    "HP",
                    0.7,
                    vec![PolicyNode::user("u1", 0.6), PolicyNode::user("u2", 0.4)],
                ),
                PolicyNode::user("LQ", 0.3),
            ],
        ))
        .unwrap()
    }

    #[test]
    fn normalization_sums_to_one() {
        let t = PolicyTree::new(PolicyNode::group(
            "root",
            1.0,
            vec![PolicyNode::user("a", 2.0), PolicyNode::user("b", 6.0)],
        ))
        .unwrap();
        let n = t.normalized_children(&EntityPath::root());
        assert!((n["a"] - 0.25).abs() < 1e-12);
        assert!((n["b"] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn absolute_share_is_product() {
        let t = figure3_tree();
        let u1 = t.absolute_share(&EntityPath::parse("/HP/u1")).unwrap();
        assert!((u1 - 0.7 * 0.6).abs() < 1e-12);
        let lq = t.absolute_share(&EntityPath::parse("/LQ")).unwrap();
        assert!((lq - 0.3).abs() < 1e-12);
    }

    #[test]
    fn users_enumerated_with_paths() {
        let t = figure3_tree();
        let users = t.users();
        assert_eq!(users.len(), 3);
        assert!(users
            .iter()
            .any(|(p, u)| p.to_string() == "/HP/u1" && u.as_str() == "u1"));
        assert_eq!(
            t.path_of_user(&GridUser::new("LQ")),
            Some(EntityPath::parse("/LQ"))
        );
    }

    #[test]
    fn mounting_inserts_remote_subtree() {
        // Site assigns 30% to the grid; the grid PDS supplies the subdivision.
        let mut site = PolicyTree::new(PolicyNode::group(
            "root",
            1.0,
            vec![
                PolicyNode::user("local", 0.7),
                PolicyNode::mount_point("grid", 0.3, "national-pds"),
            ],
        ))
        .unwrap();
        let grid_policy = PolicyTree::new(PolicyNode::group(
            "grid",
            1.0,
            vec![PolicyNode::user("vo-a", 0.5), PolicyNode::user("vo-b", 0.5)],
        ))
        .unwrap();
        let v0 = site.version();
        site.mount(&EntityPath::parse("/grid"), &grid_policy)
            .unwrap();
        assert!(site.version() > v0);
        let voa = site
            .absolute_share(&EntityPath::parse("/grid/vo-a"))
            .unwrap();
        assert!((voa - 0.15).abs() < 1e-12);
        // Local share of the mount stays under site control.
        assert!((site.absolute_share(&EntityPath::parse("/local")).unwrap() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn mount_rejects_non_mount_target() {
        let mut t = figure3_tree();
        let sub = flat_policy(&[("x", 1.0)]).unwrap();
        assert!(matches!(
            t.mount(&EntityPath::parse("/HP"), &sub),
            Err(PolicyError::NoSuchMountPoint(_))
        ));
    }

    #[test]
    fn duplicate_children_rejected() {
        let r = PolicyTree::new(PolicyNode::group(
            "root",
            1.0,
            vec![PolicyNode::user("a", 0.5), PolicyNode::user("a", 0.5)],
        ));
        assert!(matches!(r, Err(PolicyError::DuplicateChild(_))));
    }

    #[test]
    fn negative_share_rejected() {
        let r = PolicyTree::new(PolicyNode::group(
            "root",
            1.0,
            vec![PolicyNode::user("a", -0.1)],
        ));
        assert!(matches!(r, Err(PolicyError::InvalidShare(_))));
    }

    #[test]
    fn set_share_changes_normalization() {
        let mut t = figure3_tree();
        t.set_share(&EntityPath::parse("/LQ"), 0.7).unwrap();
        let n = t.normalized_children(&EntityPath::root());
        assert!((n["LQ"] - 0.5).abs() < 1e-12);
        assert!((n["HP"] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn depth_and_count() {
        let t = figure3_tree();
        assert_eq!(t.depth(), 2);
        assert_eq!(t.node_count(), 5);
    }

    #[test]
    fn flat_policy_for_paper_users() {
        // The paper's baseline: actual usage shares as targets.
        let t = flat_policy(&[
            ("U65", 0.6525),
            ("U30", 0.3049),
            ("U3", 0.0286),
            ("Uoth", 0.0140),
        ])
        .unwrap();
        let n = t.normalized_children(&EntityPath::root());
        assert_eq!(n.len(), 4);
        let sum: f64 = n.values().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
