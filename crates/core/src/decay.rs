//! Usage decay functions (§II-A: the fairshare algorithm "can be configured
//! with, e.g., different usage decay functions to control how the impact of
//! previous usage is decreased over time").

use serde::{Deserialize, Serialize};

/// How the weight of historical usage decreases with age.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecayPolicy {
    /// No decay: all history counts fully.
    None,
    /// Exponential decay with the given half-life in seconds: usage aged
    /// exactly one half-life counts half.
    Exponential {
        /// Half-life in seconds; must be > 0.
        half_life_s: f64,
    },
    /// Sliding window: usage younger than `window_s` counts fully, older
    /// usage not at all.
    Window {
        /// Window length in seconds; must be > 0.
        window_s: f64,
    },
    /// Linear ramp: weight decreases linearly from 1 (age 0) to 0 (age
    /// `span_s`).
    Linear {
        /// Age at which the weight reaches zero; must be > 0.
        span_s: f64,
    },
}

impl DecayPolicy {
    /// Whether this decay is *multiplicatively separable*: `weight(t − s) =
    /// f(t) · g(s)`, so advancing time rescales every user's decayed usage by
    /// the same factor. Separable decays let the UMS cache usage as weights
    /// relative to a fixed reference epoch — values then change only when new
    /// usage arrives, and unchanged subtrees of the fairshare tree need no
    /// touch (the lazily-applied decay of the incremental engine). The
    /// uniform factor cancels in the sibling-group normalization, so
    /// fairshare results are unaffected.
    pub fn separable(&self) -> bool {
        matches!(self, DecayPolicy::None | DecayPolicy::Exponential { .. })
    }

    /// Weight of usage aged `age_s` seconds *relative to a reference epoch*,
    /// for separable decays. Unlike [`weight`](Self::weight) this is **not**
    /// clamped for negative ages: usage newer than the epoch weighs more than
    /// 1, preserving `epoch_weight(a − b) = epoch_weight(a) / 2^(b/half)` —
    /// the identity the epoch cache depends on. Non-separable decays fall
    /// back to the clamped weight (callers must not use the epoch cache for
    /// them; see [`separable`](Self::separable)).
    pub fn epoch_weight(&self, age_s: f64) -> f64 {
        match *self {
            DecayPolicy::None => 1.0,
            DecayPolicy::Exponential { half_life_s } => {
                debug_assert!(half_life_s > 0.0);
                (0.5f64).powf(age_s / half_life_s)
            }
            _ => self.weight(age_s),
        }
    }

    /// Weight of usage aged `age_s` seconds. Always in `[0, 1]`; `1` at age 0
    /// (and for negative ages, which can transiently occur with clock skew).
    pub fn weight(&self, age_s: f64) -> f64 {
        let age = age_s.max(0.0);
        match *self {
            DecayPolicy::None => 1.0,
            DecayPolicy::Exponential { half_life_s } => {
                debug_assert!(half_life_s > 0.0);
                (0.5f64).powf(age / half_life_s)
            }
            DecayPolicy::Window { window_s } => {
                debug_assert!(window_s > 0.0);
                if age < window_s {
                    1.0
                } else {
                    0.0
                }
            }
            DecayPolicy::Linear { span_s } => {
                debug_assert!(span_s > 0.0);
                (1.0 - age / span_s).max(0.0)
            }
        }
    }
}

impl Default for DecayPolicy {
    /// The production default used in the evaluation: exponential decay with
    /// a half-life of one week.
    fn default() -> Self {
        DecayPolicy::Exponential {
            half_life_s: 7.0 * 24.0 * 3600.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_at_zero_age_is_one() {
        for p in [
            DecayPolicy::None,
            DecayPolicy::Exponential { half_life_s: 10.0 },
            DecayPolicy::Window { window_s: 10.0 },
            DecayPolicy::Linear { span_s: 10.0 },
        ] {
            assert_eq!(p.weight(0.0), 1.0, "{p:?}");
        }
    }

    #[test]
    fn exponential_half_life() {
        let p = DecayPolicy::Exponential { half_life_s: 100.0 };
        assert!((p.weight(100.0) - 0.5).abs() < 1e-12);
        assert!((p.weight(200.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn window_cuts_off() {
        let p = DecayPolicy::Window { window_s: 50.0 };
        assert_eq!(p.weight(49.9), 1.0);
        assert_eq!(p.weight(50.0), 0.0);
    }

    #[test]
    fn linear_ramp() {
        let p = DecayPolicy::Linear { span_s: 100.0 };
        assert!((p.weight(50.0) - 0.5).abs() < 1e-12);
        assert_eq!(p.weight(150.0), 0.0);
    }

    #[test]
    fn monotone_non_increasing() {
        for p in [
            DecayPolicy::None,
            DecayPolicy::Exponential { half_life_s: 30.0 },
            DecayPolicy::Window { window_s: 30.0 },
            DecayPolicy::Linear { span_s: 30.0 },
        ] {
            let mut prev = f64::INFINITY;
            for i in 0..100 {
                let w = p.weight(i as f64);
                assert!(w <= prev + 1e-15, "{p:?} at {i}");
                assert!((0.0..=1.0).contains(&w));
                prev = w;
            }
        }
    }

    #[test]
    fn negative_age_clamps_to_one() {
        let p = DecayPolicy::Exponential { half_life_s: 10.0 };
        assert_eq!(p.weight(-5.0), 1.0);
    }

    #[test]
    fn separability_classification() {
        assert!(DecayPolicy::None.separable());
        assert!(DecayPolicy::Exponential { half_life_s: 10.0 }.separable());
        assert!(!DecayPolicy::Window { window_s: 10.0 }.separable());
        assert!(!DecayPolicy::Linear { span_s: 10.0 }.separable());
    }

    #[test]
    fn epoch_weight_unclamped_and_consistent() {
        let p = DecayPolicy::Exponential { half_life_s: 10.0 };
        // Usage newer than the epoch weighs more than 1.
        assert!((p.epoch_weight(-10.0) - 2.0).abs() < 1e-12);
        // Positive ages agree with the clamped weight.
        assert_eq!(p.epoch_weight(20.0), p.weight(20.0));
        // The separability identity: shifting the epoch rescales uniformly.
        let a = p.epoch_weight(35.0) / p.epoch_weight(5.0);
        let b = p.epoch_weight(42.0) / p.epoch_weight(12.0);
        assert!((a - b).abs() < 1e-12);
        assert_eq!(DecayPolicy::None.epoch_weight(-100.0), 1.0);
    }
}
