//! Usage decay functions (§II-A: the fairshare algorithm "can be configured
//! with, e.g., different usage decay functions to control how the impact of
//! previous usage is decreased over time").

use serde::{Deserialize, Serialize};

/// How the weight of historical usage decreases with age.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecayPolicy {
    /// No decay: all history counts fully.
    None,
    /// Exponential decay with the given half-life in seconds: usage aged
    /// exactly one half-life counts half.
    Exponential {
        /// Half-life in seconds; must be > 0.
        half_life_s: f64,
    },
    /// Sliding window: usage younger than `window_s` counts fully, older
    /// usage not at all.
    Window {
        /// Window length in seconds; must be > 0.
        window_s: f64,
    },
    /// Linear ramp: weight decreases linearly from 1 (age 0) to 0 (age
    /// `span_s`).
    Linear {
        /// Age at which the weight reaches zero; must be > 0.
        span_s: f64,
    },
}

impl DecayPolicy {
    /// Weight of usage aged `age_s` seconds. Always in `[0, 1]`; `1` at age 0
    /// (and for negative ages, which can transiently occur with clock skew).
    pub fn weight(&self, age_s: f64) -> f64 {
        let age = age_s.max(0.0);
        match *self {
            DecayPolicy::None => 1.0,
            DecayPolicy::Exponential { half_life_s } => {
                debug_assert!(half_life_s > 0.0);
                (0.5f64).powf(age / half_life_s)
            }
            DecayPolicy::Window { window_s } => {
                debug_assert!(window_s > 0.0);
                if age < window_s {
                    1.0
                } else {
                    0.0
                }
            }
            DecayPolicy::Linear { span_s } => {
                debug_assert!(span_s > 0.0);
                (1.0 - age / span_s).max(0.0)
            }
        }
    }
}

impl Default for DecayPolicy {
    /// The production default used in the evaluation: exponential decay with
    /// a half-life of one week.
    fn default() -> Self {
        DecayPolicy::Exponential {
            half_life_s: 7.0 * 24.0 * 3600.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_at_zero_age_is_one() {
        for p in [
            DecayPolicy::None,
            DecayPolicy::Exponential { half_life_s: 10.0 },
            DecayPolicy::Window { window_s: 10.0 },
            DecayPolicy::Linear { span_s: 10.0 },
        ] {
            assert_eq!(p.weight(0.0), 1.0, "{p:?}");
        }
    }

    #[test]
    fn exponential_half_life() {
        let p = DecayPolicy::Exponential { half_life_s: 100.0 };
        assert!((p.weight(100.0) - 0.5).abs() < 1e-12);
        assert!((p.weight(200.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn window_cuts_off() {
        let p = DecayPolicy::Window { window_s: 50.0 };
        assert_eq!(p.weight(49.9), 1.0);
        assert_eq!(p.weight(50.0), 0.0);
    }

    #[test]
    fn linear_ramp() {
        let p = DecayPolicy::Linear { span_s: 100.0 };
        assert!((p.weight(50.0) - 0.5).abs() < 1e-12);
        assert_eq!(p.weight(150.0), 0.0);
    }

    #[test]
    fn monotone_non_increasing() {
        for p in [
            DecayPolicy::None,
            DecayPolicy::Exponential { half_life_s: 30.0 },
            DecayPolicy::Window { window_s: 30.0 },
            DecayPolicy::Linear { span_s: 30.0 },
        ] {
            let mut prev = f64::INFINITY;
            for i in 0..100 {
                let w = p.weight(i as f64);
                assert!(w <= prev + 1e-15, "{p:?} at {i}");
                assert!((0.0..=1.0).contains(&w));
                prev = w;
            }
        }
    }

    #[test]
    fn negative_age_clamps_to_one() {
        let p = DecayPolicy::Exponential { half_life_s: 10.0 };
        assert_eq!(p.weight(-5.0), 1.0);
    }
}
