//! Fairshare vectors (§III-C, Figure 3): the per-user priority
//! representation extracted from the fairshare tree.
//!
//! A vector holds one element per hierarchy level along the path from the
//! root to the user's leaf. Elements live in a configurable value range (the
//! paper's example uses 0–9999) but are stored as `f64`: "the precision of
//! the values are limited only by the numerical resolution of floating point
//! representation" — quantization only happens inside projections that need
//! it (bitwise). Paths shorter than the tree depth are padded with the
//! *balance point*, the center of the value range.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// The element value range: distances are mapped onto `0.0..=max_value`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Resolution {
    /// Largest element value (e.g. 9999.0).
    pub max_value: f64,
}

impl Resolution {
    /// The paper's example resolution: elements in 0–9999.
    pub const PAPER: Resolution = Resolution { max_value: 9999.0 };

    /// Map a signed distance `d ∈ [−1, 1]` onto the value range:
    /// d = −1 ↦ 0, d = 0 ↦ balance point (center), d = +1 ↦ max_value.
    /// Full floating-point precision is retained.
    pub fn scale(&self, d: f64) -> f64 {
        (d.clamp(-1.0, 1.0) + 1.0) / 2.0 * self.max_value
    }

    /// Recover the signed distance from an element value.
    pub fn unscale(&self, v: f64) -> f64 {
        (v / self.max_value) * 2.0 - 1.0
    }

    /// The balance-point element: the center of the value range, used to pad
    /// short paths (like `/LQ` in Figure 3).
    pub fn balance(&self) -> f64 {
        self.max_value / 2.0
    }
}

impl Default for Resolution {
    fn default() -> Self {
        Resolution::PAPER
    }
}

/// A fairshare vector: one element per hierarchy level, most significant
/// (closest to the root) first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairshareVector {
    elements: Vec<f64>,
    resolution: Resolution,
}

impl FairshareVector {
    /// Build from raw element values (already in the resolution range).
    pub fn from_elements(elements: Vec<f64>, resolution: Resolution) -> Self {
        debug_assert!(elements
            .iter()
            .all(|&e| (0.0..=resolution.max_value).contains(&e)));
        Self {
            elements,
            resolution,
        }
    }

    /// Build from per-level signed distances in `[−1, 1]`.
    pub fn from_distances(distances: &[f64], resolution: Resolution) -> Self {
        Self {
            elements: distances.iter().map(|&d| resolution.scale(d)).collect(),
            resolution,
        }
    }

    /// The element values, root level first.
    pub fn elements(&self) -> &[f64] {
        &self.elements
    }

    /// Number of levels this vector carries (before padding).
    pub fn depth(&self) -> usize {
        self.elements.len()
    }

    /// The resolution the elements are scaled with.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// A copy padded with balance-point elements up to `depth` levels —
    /// how short paths (like `/LQ` in Figure 3) are extended before
    /// comparison or projection. The vector representation "supports an
    /// arbitrary depth in the hierarchy, since the number of elements is
    /// unlimited".
    pub fn padded(&self, depth: usize) -> FairshareVector {
        let mut elements = self.elements.clone();
        while elements.len() < depth {
            elements.push(self.resolution.balance());
        }
        FairshareVector {
            elements,
            resolution: self.resolution,
        }
    }

    /// Compare two vectors element-wise from the most significant (root)
    /// level, padding the shorter with balance points. Greater = higher
    /// priority (more under-served). This is the "descending sort" order of
    /// the dictionary projection.
    pub fn compare(&self, other: &FairshareVector) -> Ordering {
        let depth = self.depth().max(other.depth());
        let bal_a = self.resolution.balance();
        let bal_b = other.resolution.balance();
        for i in 0..depth {
            let a = self.elements.get(i).copied().unwrap_or(bal_a);
            let b = other.elements.get(i).copied().unwrap_or(bal_b);
            match a.partial_cmp(&b).expect("vector elements are finite") {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// The per-level distances recovered from the elements.
    pub fn distances(&self) -> Vec<f64> {
        self.elements
            .iter()
            .map(|&e| self.resolution.unscale(e))
            .collect()
    }
}

impl PartialOrd for FairshareVector {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.compare(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_endpoints_and_balance() {
        let r = Resolution::PAPER;
        assert_eq!(r.scale(-1.0), 0.0);
        assert_eq!(r.scale(1.0), 9999.0);
        assert_eq!(r.balance(), 4999.5);
        assert_eq!(r.scale(-2.0), 0.0); // clamped
        assert_eq!(r.scale(2.0), 9999.0);
    }

    #[test]
    fn unscale_roundtrip_exact() {
        let r = Resolution::PAPER;
        for &d in &[-1.0, -0.5, 0.0, 0.25, 1.0, 1e-9] {
            let back = r.unscale(r.scale(d));
            assert!((back - d).abs() < 1e-12, "d={d} back={back}");
        }
    }

    #[test]
    fn precision_unlimited_by_resolution() {
        // Two distances closer than any integer quantum stay distinguishable.
        let r = Resolution::PAPER;
        let a = FairshareVector::from_distances(&[1e-12], r);
        let b = FairshareVector::from_distances(&[2e-12], r);
        assert_eq!(b.compare(&a), Ordering::Greater);
    }

    #[test]
    fn ordering_is_lexicographic_from_root() {
        let r = Resolution::PAPER;
        let a = FairshareVector::from_elements(vec![6000.0, 1000.0], r);
        let b = FairshareVector::from_elements(vec![5000.0, 9999.0], r);
        assert_eq!(a.compare(&b), Ordering::Greater); // root level dominates
    }

    #[test]
    fn padding_with_balance_point() {
        let r = Resolution::PAPER;
        // Figure 3: /LQ path ends early, padded with balance elements.
        let lq = FairshareVector::from_elements(vec![7000.0], r);
        let padded = lq.padded(3);
        assert_eq!(padded.elements(), &[7000.0, 4999.5, 4999.5]);
    }

    #[test]
    fn compare_pads_shorter_vector() {
        let r = Resolution::PAPER;
        let short = FairshareVector::from_elements(vec![6000.0], r);
        let long_low = FairshareVector::from_elements(vec![6000.0, 4000.0], r);
        let long_high = FairshareVector::from_elements(vec![6000.0, 6000.0], r);
        assert_eq!(short.compare(&long_low), Ordering::Greater);
        assert_eq!(short.compare(&long_high), Ordering::Less);
        assert_eq!(
            short.compare(&FairshareVector::from_elements(vec![6000.0, 4999.5], r)),
            Ordering::Equal
        );
    }

    #[test]
    fn arbitrary_depth_supported() {
        let r = Resolution::PAPER;
        let deep = FairshareVector::from_elements(vec![4999.5; 64], r);
        assert_eq!(deep.depth(), 64);
        let mut deeper = vec![4999.5; 64];
        deeper.push(5000.0);
        let deeper = FairshareVector::from_elements(deeper, r);
        assert_eq!(deeper.compare(&deep), Ordering::Greater);
    }

    #[test]
    fn distances_recovered() {
        let r = Resolution::PAPER;
        let v = FairshareVector::from_distances(&[0.5, -0.5], r);
        let d = v.distances();
        assert!((d[0] - 0.5).abs() < 1e-12);
        assert!((d[1] + 0.5).abs() < 1e-12);
    }
}
