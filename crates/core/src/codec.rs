//! Exact binary wire codec for [`UsageSummary`] gossip payloads.
//!
//! Two encodings sit behind one frame format (ROADMAP item 4): [`Encoding::Dense`]
//! stores every (slot, charge) cell at full fixed width — the honest
//! materialization of the byte model PR 7's profiler charged — while
//! [`Encoding::Delta`] exploits the structure the reliable exchange already
//! guarantees (sorted users, sorted slots, numerically tame charge values)
//! with a columnar varint layout: front-coded user names, delta-coded slot
//! indices, and byte-swapped-varint `f64` charges. Both are *exact*: decode
//! reproduces the summary bit for bit, and `wire_bytes`/`wire_size`
//! accounting throughout the simulator is defined as the encoded length, so
//! modeled bytes and profiled bytes can no longer diverge.
//!
//! Frame layout (all multi-byte integers little-endian or LEB128 varint):
//!
//! ```text
//! magic (0xA9) | version (1) | encoding tag
//! varint site | varint seq | f64 slot_s (8 B LE)
//! varint section count (1 own + one per relayed origin)
//!   section: varint origin site, then the encoding-specific cell payload
//! crc32 (4 B LE, over everything before it)
//! ```
//!
//! The CRC is verified *before* any parsing, so a corrupted frame is
//! rejected outright rather than half-decoded; CRC32 detects every
//! single-bit error by construction (`proptest_codec.rs` exercises this).
//! Decoders also enforce canonical form — strictly increasing user names
//! and slot indices, no trailing bytes — so a frame that decodes at all
//! re-encodes to the identical bytes.

use crate::ids::{GridUser, SiteId};
use crate::usage::{UsageSummary, UserCells};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

const MAGIC: u8 = 0xA9;
const VERSION: u8 = 1;

/// Wire encoding selector for summary payloads. A transport property — the
/// same [`UsageSummary`] can travel under either encoding; the scenario
/// picks one and every byte counter downstream uses it consistently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Encoding {
    /// Fixed-width cells: 16 bytes per (slot, charge) pair plus names.
    Dense,
    /// Columnar varint layout with front-coded names and delta-coded
    /// slots — the scale-out default.
    #[default]
    Delta,
}

impl Encoding {
    fn tag(self) -> u8 {
        match self {
            Encoding::Dense => 0,
            Encoding::Delta => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        match tag {
            0 => Ok(Encoding::Dense),
            1 => Ok(Encoding::Delta),
            t => Err(CodecError::BadEncoding(t)),
        }
    }
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Too short to even hold the frame scaffolding.
    Truncated,
    /// CRC mismatch — the bytes were damaged in flight.
    Corrupt,
    /// First byte is not the summary-frame magic.
    BadMagic(u8),
    /// Unknown format version.
    BadVersion(u8),
    /// Unknown encoding tag.
    BadEncoding(u8),
    /// Structurally invalid content (overruns, non-canonical order,
    /// invalid UTF-8 in names, trailing bytes).
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::Corrupt => write!(f, "crc mismatch"),
            CodecError::BadMagic(b) => write!(f, "bad magic byte {b:#04x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported version {v}"),
            CodecError::BadEncoding(t) => write!(f, "unknown encoding tag {t}"),
            CodecError::Malformed(why) => write!(f, "malformed frame: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

// --- CRC32 (IEEE, reflected) -----------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE 802.3) of `data` — the frame trailer checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --- Byte sinks: one write path serves encoding and exact sizing -----------

trait Sink {
    fn byte(&mut self, b: u8);
    fn bytes(&mut self, bs: &[u8]);
}

impl Sink for Vec<u8> {
    fn byte(&mut self, b: u8) {
        self.push(b);
    }
    fn bytes(&mut self, bs: &[u8]) {
        self.extend_from_slice(bs);
    }
}

/// Counting sink: `encoded_size` runs the identical write path without
/// materializing a buffer, so size and encoding cannot drift apart.
struct Count(usize);

impl Sink for Count {
    fn byte(&mut self, _: u8) {
        self.0 += 1;
    }
    fn bytes(&mut self, bs: &[u8]) {
        self.0 += bs.len();
    }
}

fn varint<S: Sink>(mut v: u64, out: &mut S) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.byte(b);
            return;
        }
        out.byte(b | 0x80);
    }
}

// --- Reader ----------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn byte(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift == 63 && b > 1 {
                return Err(CodecError::Malformed("varint overflows u64"));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::Malformed("varint too long"));
            }
        }
    }

    /// A declared element count, sanity-bounded by the bytes actually left
    /// (`min_bytes` per element) so forged counts cannot drive allocation.
    fn seq_len(&mut self, min_bytes: usize) -> Result<usize, CodecError> {
        let n = self.varint()? as usize;
        if n.saturating_mul(min_bytes) > self.remaining() {
            return Err(CodecError::Malformed("count exceeds frame"));
        }
        Ok(n)
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        let bytes: [u8; 8] = self.take(8)?.try_into().expect("take(8) is 8 bytes");
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }
}

// --- Section payloads ------------------------------------------------------

fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// `Some(x)` when `charge` is bit-exactly the non-negative integer `x`
/// below 2^53 (so `x as f64` reproduces it losslessly), `None` otherwise —
/// in particular for `-0.0`, `NaN`, negatives, and fractional values.
fn integral_value(charge: f64) -> Option<u64> {
    if !(0.0..9_007_199_254_740_992.0).contains(&charge) {
        return None;
    }
    let x = charge as u64;
    ((x as f64).to_bits() == charge.to_bits()).then_some(x)
}

fn write_section<S: Sink>(origin: SiteId, cells: &UserCells, enc: Encoding, out: &mut S) {
    varint(u64::from(origin.0), out);
    varint(cells.len() as u64, out);
    match enc {
        Encoding::Dense => {
            // Fixed-width u32 length/count fields and 16-byte cells: this is
            // the byte model PR 7's profiler charged, made real.
            for (user, slots) in cells {
                let name = user.as_str().as_bytes();
                out.bytes(&(name.len() as u32).to_le_bytes());
                out.bytes(name);
                out.bytes(&(slots.len() as u32).to_le_bytes());
                for (&slot, &charge) in slots {
                    out.bytes(&slot.to_le_bytes());
                    out.bytes(&charge.to_bits().to_le_bytes());
                }
            }
        }
        Encoding::Delta => {
            // Names column, front-coded against the previous name: grid
            // identities like "u000123" share long prefixes, so most
            // entries shrink to a couple of bytes.
            let mut prev: &[u8] = &[];
            for user in cells.keys() {
                let name = user.as_str().as_bytes();
                let shared = common_prefix(prev, name);
                varint(shared as u64, out);
                varint((name.len() - shared) as u64, out);
                out.bytes(&name[shared..]);
                prev = name;
            }
            // Cell-count column.
            for slots in cells.values() {
                varint(slots.len() as u64, out);
            }
            // Slot column: first index absolute, the rest as gaps (sorted
            // and distinct, so every gap is ≥ 1 and typically tiny).
            for slots in cells.values() {
                let mut prev_slot = None;
                for &slot in slots.keys() {
                    match prev_slot {
                        None => varint(slot, out),
                        Some(p) => varint(slot - p, out),
                    }
                    prev_slot = Some(slot);
                }
            }
            // Value column, led by a per-cell bitmap: set bits mark charges
            // that are exactly a small non-negative integer — the common
            // case for accumulated core-seconds — stored as a plain varint
            // of that integer. Clear bits fall back to the `f64` bits
            // byte-swapped then varint-coded (lossless for every bit
            // pattern; the trailing-zero mantissas of dyadic charges become
            // leading zeros the varint drops).
            let mut bitmap = Vec::new();
            let mut bit = 0usize;
            for slots in cells.values() {
                for &charge in slots.values() {
                    if bit.is_multiple_of(8) {
                        bitmap.push(0u8);
                    }
                    if integral_value(charge).is_some() {
                        bitmap[bit / 8] |= 1 << (bit % 8);
                    }
                    bit += 1;
                }
            }
            out.bytes(&bitmap);
            for slots in cells.values() {
                for &charge in slots.values() {
                    match integral_value(charge) {
                        Some(x) => varint(x, out),
                        None => varint(charge.to_bits().swap_bytes(), out),
                    }
                }
            }
        }
    }
}

fn read_section(r: &mut Reader<'_>, enc: Encoding) -> Result<(SiteId, UserCells), CodecError> {
    let origin = SiteId(
        u32::try_from(r.varint()?).map_err(|_| CodecError::Malformed("origin exceeds u32"))?,
    );
    let mut cells = UserCells::new();
    match enc {
        Encoding::Dense => {
            let nusers = r.seq_len(8)?;
            let mut prev_name = String::new();
            for _ in 0..nusers {
                let name_len =
                    u32::from_le_bytes(r.take(4)?.try_into().expect("take(4) is 4 bytes")) as usize;
                if name_len > r.remaining() {
                    return Err(CodecError::Malformed("name exceeds frame"));
                }
                let name = std::str::from_utf8(r.take(name_len)?)
                    .map_err(|_| CodecError::Malformed("name is not UTF-8"))?
                    .to_string();
                if !prev_name.is_empty() && name <= prev_name {
                    return Err(CodecError::Malformed("names out of order"));
                }
                let nslots =
                    u32::from_le_bytes(r.take(4)?.try_into().expect("take(4) is 4 bytes")) as usize;
                if nslots.saturating_mul(16) > r.remaining() {
                    return Err(CodecError::Malformed("count exceeds frame"));
                }
                let mut slots = BTreeMap::new();
                let mut prev_slot = None;
                for _ in 0..nslots {
                    let slot =
                        u64::from_le_bytes(r.take(8)?.try_into().expect("take(8) is 8 bytes"));
                    if prev_slot.is_some_and(|p| slot <= p) {
                        return Err(CodecError::Malformed("slots out of order"));
                    }
                    prev_slot = Some(slot);
                    let charge = r.f64()?;
                    slots.insert(slot, charge);
                }
                cells.insert(GridUser::new(&name), slots);
                prev_name = name;
            }
        }
        Encoding::Delta => {
            let nusers = r.seq_len(2)?;
            let mut names = Vec::with_capacity(nusers);
            let mut prev = Vec::new();
            for _ in 0..nusers {
                let shared = r.varint()? as usize;
                if shared > prev.len() {
                    return Err(CodecError::Malformed("shared prefix exceeds previous name"));
                }
                let suffix_len = r.seq_len(1)?;
                let mut name = prev[..shared].to_vec();
                name.extend_from_slice(r.take(suffix_len)?);
                if !prev.is_empty() && name <= prev {
                    return Err(CodecError::Malformed("names out of order"));
                }
                let text = String::from_utf8(name.clone())
                    .map_err(|_| CodecError::Malformed("name is not UTF-8"))?;
                names.push(GridUser::new(text));
                prev = name;
            }
            let mut counts = Vec::with_capacity(nusers);
            for _ in 0..nusers {
                counts.push(r.seq_len(1)?);
            }
            let mut slot_columns = Vec::with_capacity(nusers);
            for &count in &counts {
                let mut slots = Vec::with_capacity(count);
                let mut cursor = 0u64;
                for i in 0..count {
                    let v = r.varint()?;
                    if i > 0 && v == 0 {
                        return Err(CodecError::Malformed("zero slot gap"));
                    }
                    cursor = cursor
                        .checked_add(v)
                        .ok_or(CodecError::Malformed("slot index overflows u64"))?;
                    slots.push(cursor);
                }
                slot_columns.push(slots);
            }
            let total_cells: usize = counts.iter().sum();
            let bitmap = r.take(total_cells.div_ceil(8))?.to_vec();
            if !total_cells.is_multiple_of(8)
                && bitmap.last().is_some_and(|b| b >> (total_cells % 8) != 0)
            {
                return Err(CodecError::Malformed("bitmap padding bits set"));
            }
            let mut bit = 0usize;
            for (user, slots) in names.into_iter().zip(slot_columns) {
                let mut per_slot = BTreeMap::new();
                for slot in slots {
                    let integral = bitmap[bit / 8] & (1 << (bit % 8)) != 0;
                    bit += 1;
                    let v = r.varint()?;
                    let charge = if integral {
                        if v >= 9_007_199_254_740_992 {
                            return Err(CodecError::Malformed("integral value exceeds 2^53"));
                        }
                        v as f64
                    } else {
                        f64::from_bits(v.swap_bytes())
                    };
                    // Enforce canonical form: the encoder always takes the
                    // integral path when it applies.
                    if integral != integral_value(charge).is_some() {
                        return Err(CodecError::Malformed("non-canonical value encoding"));
                    }
                    per_slot.insert(slot, charge);
                }
                cells.insert(user, per_slot);
            }
        }
    }
    Ok((origin, cells))
}

// --- Frame encode / size / decode ------------------------------------------

fn write_frame<S: Sink>(s: &UsageSummary, enc: Encoding, out: &mut S) {
    out.byte(MAGIC);
    out.byte(VERSION);
    out.byte(enc.tag());
    varint(u64::from(s.site.0), out);
    varint(s.seq, out);
    out.bytes(&s.slot_s.to_bits().to_le_bytes());
    varint(1 + s.relayed.len() as u64, out);
    write_section(s.site, &s.per_user, enc, out);
    for (&origin, cells) in &s.relayed {
        write_section(origin, cells, enc, out);
    }
}

/// Encode a summary under `enc`, CRC trailer included.
pub fn encode_summary(s: &UsageSummary, enc: Encoding) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_size(s, enc));
    write_frame(s, enc, &mut out);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Exact encoded length of `s` under `enc` — runs the same write path as
/// [`encode_summary`] through a counting sink, so it equals
/// `encode_summary(s, enc).len()` by construction.
pub fn encoded_size(s: &UsageSummary, enc: Encoding) -> usize {
    let mut count = Count(0);
    write_frame(s, enc, &mut count);
    count.0 + 4
}

/// Decode a frame back into `(encoding, summary)`. The CRC is checked
/// before anything is parsed; every error leaves no partial result.
pub fn decode_summary(buf: &[u8]) -> Result<(Encoding, UsageSummary), CodecError> {
    // Smallest possible frame: 3 header bytes, 1-byte site/seq varints,
    // 8-byte slot width, section count, own-section origin + user count,
    // 4-byte CRC.
    if buf.len() < 20 {
        return Err(CodecError::Truncated);
    }
    let (body, trailer) = buf.split_at(buf.len() - 4);
    let expect = u32::from_le_bytes(trailer.try_into().expect("trailer is 4 bytes"));
    if crc32(body) != expect {
        return Err(CodecError::Corrupt);
    }
    let mut r = Reader::new(body);
    let magic = r.byte()?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = r.byte()?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let enc = Encoding::from_tag(r.byte()?)?;
    let site =
        SiteId(u32::try_from(r.varint()?).map_err(|_| CodecError::Malformed("site exceeds u32"))?);
    let seq = r.varint()?;
    let slot_s = r.f64()?;
    let nsections = r.seq_len(2)?;
    if nsections == 0 {
        return Err(CodecError::Malformed("frame without own section"));
    }
    let (own_origin, per_user) = read_section(&mut r, enc)?;
    if own_origin != site {
        return Err(CodecError::Malformed("own section origin mismatch"));
    }
    let mut relayed = BTreeMap::new();
    for _ in 1..nsections {
        let (origin, cells) = read_section(&mut r, enc)?;
        if relayed.insert(origin, cells).is_some() {
            return Err(CodecError::Malformed("duplicate relayed origin"));
        }
    }
    if r.remaining() != 0 {
        return Err(CodecError::Malformed("trailing bytes"));
    }
    Ok((
        enc,
        UsageSummary {
            site,
            seq,
            slot_s,
            per_user,
            relayed,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells(entries: &[(&str, &[(u64, f64)])]) -> UserCells {
        entries
            .iter()
            .map(|(name, slots)| (GridUser::new(*name), slots.iter().copied().collect()))
            .collect()
    }

    fn sample() -> UsageSummary {
        UsageSummary {
            site: SiteId(3),
            seq: 17,
            slot_s: 300.0,
            per_user: cells(&[
                ("u000120", &[(4, 1200.0), (5, 64.5), (9, 0.125)]),
                ("u000121", &[(4, 300.0)]),
                ("vo-atlas", &[(1, 7.75)]),
            ]),
            relayed: [
                (SiteId(7), cells(&[("u000120", &[(4, 60.0)])])),
                (SiteId(9), cells(&[("w", &[(0, 1.0), (1, 2.0)])])),
            ]
            .into_iter()
            .collect(),
        }
    }

    #[test]
    fn round_trip_both_encodings() {
        let s = sample();
        for enc in [Encoding::Dense, Encoding::Delta] {
            let bytes = encode_summary(&s, enc);
            assert_eq!(decode_summary(&bytes), Ok((enc, s.clone())), "{enc:?}");
        }
    }

    #[test]
    fn encoded_size_matches_encoding() {
        let s = sample();
        for enc in [Encoding::Dense, Encoding::Delta] {
            assert_eq!(encoded_size(&s, enc), encode_summary(&s, enc).len());
        }
    }

    #[test]
    fn delta_is_smaller_on_structured_names() {
        let mut per_user = UserCells::new();
        for i in 0..100 {
            per_user.insert(
                GridUser::new(format!("u{i:06}")),
                [(4u64, 300.0 * (i + 1) as f64)].into_iter().collect(),
            );
        }
        let s = UsageSummary {
            site: SiteId(0),
            seq: 1,
            slot_s: 300.0,
            per_user,
            relayed: BTreeMap::new(),
        };
        let dense = encode_summary(&s, Encoding::Dense).len();
        let delta = encode_summary(&s, Encoding::Delta).len();
        assert!(
            (dense as f64) / (delta as f64) >= 3.0,
            "dense {dense} / delta {delta} below 3x"
        );
    }

    #[test]
    fn empty_summary_round_trips() {
        let s = UsageSummary {
            site: SiteId(0),
            seq: 0,
            slot_s: 60.0,
            per_user: UserCells::new(),
            relayed: BTreeMap::new(),
        };
        for enc in [Encoding::Dense, Encoding::Delta] {
            let bytes = encode_summary(&s, enc);
            assert_eq!(decode_summary(&bytes), Ok((enc, s.clone())));
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let s = sample();
        for enc in [Encoding::Dense, Encoding::Delta] {
            let bytes = encode_summary(&s, enc);
            for i in 0..bytes.len() {
                for bit in 0..8 {
                    let mut bad = bytes.clone();
                    bad[i] ^= 1 << bit;
                    assert!(
                        decode_summary(&bad).is_err(),
                        "{enc:?}: flip bit {bit} of byte {i} decoded silently"
                    );
                }
            }
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = encode_summary(&sample(), Encoding::Delta);
        for cut in 0..bytes.len() {
            assert!(decode_summary(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn special_values_survive() {
        let s = UsageSummary {
            site: SiteId(1),
            seq: 2,
            slot_s: f64::MIN_POSITIVE,
            per_user: cells(&[("a", &[(u64::MAX - 1, f64::MAX), (u64::MAX, 1e-300)])]),
            relayed: BTreeMap::new(),
        };
        for enc in [Encoding::Dense, Encoding::Delta] {
            let bytes = encode_summary(&s, enc);
            assert_eq!(decode_summary(&bytes), Ok((enc, s.clone())));
        }
    }
}
