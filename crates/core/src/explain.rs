//! Decision provenance: capture every component that produced one served
//! priority — the policy path with per-level shares, the distance
//! decomposition, the fairshare vector, and the projection inputs — in a
//! form compact enough to ship in a flight-recorder dump and precise enough
//! that [`Explanation::replay`] reproduces the served factor **bit-for-bit**.
//!
//! The capture references no tree state: every number needed to re-evaluate
//! the decision is embedded, so an explanation archived at one site can be
//! replayed at another (or months later) and still match exactly. Floats are
//! serialized with Rust's shortest-round-trip formatting (`{:?}`), which
//! `str::parse::<f64>` inverts exactly, so the JSON round-trip is also
//! bit-exact for finite values.

use crate::decay::DecayPolicy;
use crate::fairshare::{FairshareConfig, FairshareTree};
use crate::ids::{EntityPath, GridUser};
use crate::projection::{rank_value, BitwiseVector, DictionaryOrdering, Percental, ProjectionKind};
use crate::vector::{FairshareVector, Resolution};

/// One hierarchy level of a user's policy path, with the captured sibling-
/// group shares and the distance decomposition at that level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelExplanation {
    /// Absolute path of the node at this level (e.g. `/physics/alice`).
    pub path: String,
    /// Normalized policy (target) share within the sibling group.
    pub policy_share: f64,
    /// Normalized decayed-usage share within the sibling group.
    pub usage_share: f64,
    /// Relative distance component `(p − u) / max(p, u)`.
    pub rel: f64,
    /// Absolute distance component `p − u`.
    pub abs: f64,
    /// Combined distance `k·rel + (1 − k)·abs`.
    pub distance: f64,
    /// Quantized vector element `scale(distance)`.
    pub element: f64,
}

/// The projection-specific inputs captured alongside the shared components.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjectionExplanation {
    /// Product-of-shares difference (§III-C): factor is
    /// `((target − usage) + 1) / 2`.
    Percental {
        /// Product of the per-level policy shares along the path.
        target_product: f64,
        /// Product of the per-level usage shares along the path.
        usage_product: f64,
    },
    /// Bit-merged quantized vector: factor is the merge of the captured
    /// vector under the captured bit budget.
    Bitwise {
        /// Bits of entropy per hierarchy level.
        bits_per_level: u32,
        /// Levels actually merged (depth clamped to the mantissa budget).
        levels: usize,
    },
    /// Rank-based dictionary ordering: factor is
    /// [`rank_value`]`(rank_start, rank_start + tie_count, population)`.
    Dictionary {
        /// 0-based rank of the first vector tied with the user's.
        rank_start: usize,
        /// Number of users sharing that vector (≥ 1, includes this user).
        tie_count: usize,
        /// Total ranked population.
        population: usize,
    },
}

impl ProjectionExplanation {
    /// The algorithm name, matching [`Projection::name`](crate::Projection::name).
    pub fn algorithm(&self) -> &'static str {
        match self {
            ProjectionExplanation::Percental { .. } => "percental",
            ProjectionExplanation::Bitwise { .. } => "bitwise",
            ProjectionExplanation::Dictionary { .. } => "dictionary",
        }
    }
}

/// A complete, self-contained record of one priority decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The grid user the decision was served for.
    pub user: String,
    /// When the fairshare tree behind the decision was computed (seconds).
    pub computed_at_s: f64,
    /// Distance weight `k` at capture time.
    pub k_weight: f64,
    /// Vector element resolution (max value) at capture time.
    pub resolution_max: f64,
    /// Usage decay policy at capture time (decayed usage shares in
    /// [`LevelExplanation`] were produced under it).
    pub decay: DecayPolicy,
    /// Full tree depth the vector is padded to.
    pub tree_depth: usize,
    /// Root→leaf policy path with per-level shares and distance terms.
    pub levels: Vec<LevelExplanation>,
    /// The fairshare vector, padded with the balance point to `tree_depth`.
    pub vector: Vec<f64>,
    /// Projection algorithm and its captured inputs.
    pub projection: ProjectionExplanation,
    /// The factor that was actually served.
    pub factor: f64,
}

impl Explanation {
    /// Capture the full provenance of `user`'s priority under `kind` from a
    /// computed tree. Returns `None` if the user is not in the tree.
    ///
    /// The captured `factor` is computed through the same code paths the
    /// serving side uses, so it equals the served value bit-for-bit.
    pub fn capture(tree: &FairshareTree, user: &GridUser, kind: ProjectionKind) -> Option<Self> {
        let path = tree.path_of_user(user)?.clone();
        let config = *tree.config();
        let mut levels = Vec::with_capacity(path.depth());
        let mut prefix = EntityPath::root();
        for comp in path.components() {
            prefix = prefix.child(comp);
            let state = tree.node(&prefix)?;
            let (p, u) = (state.policy_share, state.usage_share);
            let rel = if p == u {
                0.0
            } else {
                (p - u) / p.max(u).max(f64::MIN_POSITIVE)
            };
            levels.push(LevelExplanation {
                path: format!("{prefix}"),
                policy_share: p,
                usage_share: u,
                rel,
                abs: p - u,
                distance: state.distance,
                element: state.element,
            });
        }
        let vector = tree.vector_for_user(user)?;
        let (projection, factor) = match kind {
            ProjectionKind::Percental => {
                let (target, usage) = Percental::total_shares(tree, &path)?;
                (
                    ProjectionExplanation::Percental {
                        target_product: target,
                        usage_product: usage,
                    },
                    ((target - usage) + 1.0) / 2.0,
                )
            }
            ProjectionKind::Bitwise => {
                let proj = BitwiseVector::default();
                let levels_used = proj.levels_for(tree);
                (
                    ProjectionExplanation::Bitwise {
                        bits_per_level: proj.bits_per_level,
                        levels: levels_used,
                    },
                    proj.merge_vector(&vector, levels_used),
                )
            }
            ProjectionKind::Dictionary => {
                let (start, ties, n) = DictionaryOrdering.rank_of(tree, user)?;
                (
                    ProjectionExplanation::Dictionary {
                        rank_start: start,
                        tie_count: ties,
                        population: n,
                    },
                    rank_value(start, start + ties, n),
                )
            }
        };
        Some(Explanation {
            user: user.as_str().to_string(),
            computed_at_s: tree.computed_at_s,
            k_weight: config.k_weight,
            resolution_max: config.resolution.max_value,
            decay: config.decay,
            tree_depth: tree.depth(),
            levels,
            vector: vector.elements().to_vec(),
            projection,
            factor,
        })
    }

    /// Re-evaluate the captured components into a priority factor. Equals
    /// [`factor`](Self::factor) bit-for-bit — the replay uses the identical
    /// arithmetic (and, for bitwise, the identical merge code) the serving
    /// side used.
    pub fn replay(&self) -> f64 {
        match self.projection {
            ProjectionExplanation::Percental {
                target_product,
                usage_product,
            } => ((target_product - usage_product) + 1.0) / 2.0,
            ProjectionExplanation::Bitwise {
                bits_per_level,
                levels,
            } => {
                let vec = FairshareVector::from_elements(
                    self.vector.clone(),
                    Resolution {
                        max_value: self.resolution_max,
                    },
                );
                BitwiseVector::new(bits_per_level).merge_vector(&vec, levels)
            }
            ProjectionExplanation::Dictionary {
                rank_start,
                tie_count,
                population,
            } => rank_value(rank_start, rank_start + tie_count, population),
        }
    }

    /// Cross-check the internal consistency of the capture: every level's
    /// distance decomposition re-derives from its shares under the captured
    /// `k` and resolution, and [`replay`](Self::replay) matches
    /// [`factor`](Self::factor) — all comparisons bit-exact.
    pub fn verify(&self) -> bool {
        let config = FairshareConfig {
            k_weight: self.k_weight,
            resolution: Resolution {
                max_value: self.resolution_max,
            },
            decay: self.decay,
        };
        self.levels.iter().all(|l| {
            let d = config.distance(l.policy_share, l.usage_share);
            d.to_bits() == l.distance.to_bits()
                && config.resolution.scale(d).to_bits() == l.element.to_bits()
                && (self.k_weight * l.rel + (1.0 - self.k_weight) * l.abs).to_bits()
                    == l.distance.to_bits()
        }) && self.replay().to_bits() == self.factor.to_bits()
    }

    /// Render as compact single-line JSON. Finite floats round-trip exactly
    /// through [`from_json`](Self::from_json).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str(&format!(
            "{{\"user\":\"{}\",\"computed_at_s\":{:?},\"k_weight\":{:?},\"resolution_max\":{:?}",
            esc(&self.user),
            self.computed_at_s,
            self.k_weight,
            self.resolution_max
        ));
        s.push_str(",\"decay\":");
        s.push_str(&decay_json(&self.decay));
        s.push_str(&format!(",\"tree_depth\":{}", self.tree_depth));
        s.push_str(",\"levels\":[");
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"path\":\"{}\",\"policy_share\":{:?},\"usage_share\":{:?},\"rel\":{:?},\
                 \"abs\":{:?},\"distance\":{:?},\"element\":{:?}}}",
                esc(&l.path),
                l.policy_share,
                l.usage_share,
                l.rel,
                l.abs,
                l.distance,
                l.element
            ));
        }
        s.push_str("],\"vector\":[");
        for (i, e) in self.vector.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{e:?}"));
        }
        s.push_str("],\"projection\":");
        match self.projection {
            ProjectionExplanation::Percental {
                target_product,
                usage_product,
            } => s.push_str(&format!(
                "{{\"algorithm\":\"percental\",\"target_product\":{target_product:?},\
                 \"usage_product\":{usage_product:?}}}"
            )),
            ProjectionExplanation::Bitwise {
                bits_per_level,
                levels,
            } => s.push_str(&format!(
                "{{\"algorithm\":\"bitwise\",\"bits_per_level\":{bits_per_level},\
                 \"levels\":{levels}}}"
            )),
            ProjectionExplanation::Dictionary {
                rank_start,
                tie_count,
                population,
            } => s.push_str(&format!(
                "{{\"algorithm\":\"dictionary\",\"rank_start\":{rank_start},\
                 \"tie_count\":{tie_count},\"population\":{population}}}"
            )),
        }
        s.push_str(&format!(",\"factor\":{:?}}}", self.factor));
        s
    }

    /// Parse an explanation previously rendered by [`to_json`](Self::to_json).
    pub fn from_json(s: &str) -> Option<Self> {
        let v = Json::parse(s)?;
        let o = v.obj()?;
        let decay = {
            let d = o.get("decay")?.obj()?;
            match d.get("kind")?.str_()? {
                "none" => DecayPolicy::None,
                "exponential" => DecayPolicy::Exponential {
                    half_life_s: d.get("half_life_s")?.num()?,
                },
                "window" => DecayPolicy::Window {
                    window_s: d.get("window_s")?.num()?,
                },
                "linear" => DecayPolicy::Linear {
                    span_s: d.get("span_s")?.num()?,
                },
                _ => return None,
            }
        };
        let levels = o
            .get("levels")?
            .arr()?
            .iter()
            .map(|l| {
                let l = l.obj()?;
                Some(LevelExplanation {
                    path: l.get("path")?.str_()?.to_string(),
                    policy_share: l.get("policy_share")?.num()?,
                    usage_share: l.get("usage_share")?.num()?,
                    rel: l.get("rel")?.num()?,
                    abs: l.get("abs")?.num()?,
                    distance: l.get("distance")?.num()?,
                    element: l.get("element")?.num()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let vector = o
            .get("vector")?
            .arr()?
            .iter()
            .map(|e| e.num())
            .collect::<Option<Vec<_>>>()?;
        let projection = {
            let p = o.get("projection")?.obj()?;
            match p.get("algorithm")?.str_()? {
                "percental" => ProjectionExplanation::Percental {
                    target_product: p.get("target_product")?.num()?,
                    usage_product: p.get("usage_product")?.num()?,
                },
                "bitwise" => ProjectionExplanation::Bitwise {
                    bits_per_level: p.get("bits_per_level")?.num()? as u32,
                    levels: p.get("levels")?.num()? as usize,
                },
                "dictionary" => ProjectionExplanation::Dictionary {
                    rank_start: p.get("rank_start")?.num()? as usize,
                    tie_count: p.get("tie_count")?.num()? as usize,
                    population: p.get("population")?.num()? as usize,
                },
                _ => return None,
            }
        };
        Some(Explanation {
            user: o.get("user")?.str_()?.to_string(),
            computed_at_s: o.get("computed_at_s")?.num()?,
            k_weight: o.get("k_weight")?.num()?,
            resolution_max: o.get("resolution_max")?.num()?,
            decay,
            tree_depth: o.get("tree_depth")?.num()? as usize,
            levels,
            vector,
            projection,
            factor: o.get("factor")?.num()?,
        })
    }

    /// Render a human-readable multi-line account of the decision — the
    /// output of the `aequus-explain` tool.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "priority for {}: {:.6} ({} projection)\n",
            self.user,
            self.factor,
            self.projection.algorithm()
        ));
        s.push_str(&format!(
            "  tree computed at t={:.1}s, depth {}, k={}, resolution {}, decay {:?}\n",
            self.computed_at_s, self.tree_depth, self.k_weight, self.resolution_max, self.decay
        ));
        s.push_str("  policy path (target vs decayed usage per sibling group):\n");
        for l in &self.levels {
            s.push_str(&format!(
                "    {:<24} target {:.4}  usage {:.4}  rel {:+.4}  abs {:+.4}  \
                 distance {:+.4}  element {:.1}\n",
                l.path, l.policy_share, l.usage_share, l.rel, l.abs, l.distance, l.element
            ));
        }
        let balance = Resolution {
            max_value: self.resolution_max,
        }
        .balance();
        s.push_str(&format!(
            "  fairshare vector (balance point {balance}): [{}]\n",
            self.vector
                .iter()
                .map(|e| format!("{e:.1}"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        match self.projection {
            ProjectionExplanation::Percental {
                target_product,
                usage_product,
            } => s.push_str(&format!(
                "  percental: target product {:.6} − usage product {:.6} → \
                 factor (({:.6} − {:.6}) + 1) / 2 = {:.6}\n",
                target_product, usage_product, target_product, usage_product, self.factor
            )),
            ProjectionExplanation::Bitwise {
                bits_per_level,
                levels,
            } => s.push_str(&format!(
                "  bitwise: {bits_per_level} bits/level over {levels} level(s) → factor {:.6}\n",
                self.factor
            )),
            ProjectionExplanation::Dictionary {
                rank_start,
                tie_count,
                population,
            } => s.push_str(&format!(
                "  dictionary: rank {} of {} ({} tied) → factor {:.6}\n",
                rank_start + 1,
                population,
                tie_count,
                self.factor
            )),
        }
        s.push_str(&format!(
            "  replay: {:?} ({})\n",
            self.replay(),
            if self.verify() {
                "bit-exact"
            } else {
                "MISMATCH"
            }
        ));
        s
    }
}

fn decay_json(d: &DecayPolicy) -> String {
    match *d {
        DecayPolicy::None => "{\"kind\":\"none\"}".to_string(),
        DecayPolicy::Exponential { half_life_s } => {
            format!("{{\"kind\":\"exponential\",\"half_life_s\":{half_life_s:?}}}")
        }
        DecayPolicy::Window { window_s } => {
            format!("{{\"kind\":\"window\",\"window_s\":{window_s:?}}}")
        }
        DecayPolicy::Linear { span_s } => {
            format!("{{\"kind\":\"linear\",\"span_s\":{span_s:?}}}")
        }
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON value for parsing explanations back (numbers, strings,
/// arrays, objects — the subset [`Explanation::to_json`] emits).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(s: &str) -> Option<Json> {
        let b = s.as_bytes();
        let mut i = 0usize;
        let v = parse_value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i == b.len() {
            Some(v)
        } else {
            None
        }
    }

    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn str_(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn obj(&self) -> Option<JsonObj<'_>> {
        match self {
            Json::Obj(o) => Some(JsonObj(o)),
            _ => None,
        }
    }
}

/// Key lookup over a parsed object's entries.
#[derive(Clone, Copy)]
struct JsonObj<'a>(&'a [(String, Json)]);

impl JsonObj<'_> {
    fn get(&self, key: &str) -> Option<&Json> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Option<Json> {
    skip_ws(b, i);
    match *b.get(*i)? {
        b'"' => parse_string(b, i).map(Json::Str),
        b'[' => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Some(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, i)?);
                skip_ws(b, i);
                match *b.get(*i)? {
                    b',' => *i += 1,
                    b']' => {
                        *i += 1;
                        return Some(Json::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'{' => {
            *i += 1;
            let mut entries = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Some(Json::Obj(entries));
            }
            loop {
                skip_ws(b, i);
                let key = parse_string(b, i)?;
                skip_ws(b, i);
                if *b.get(*i)? != b':' {
                    return None;
                }
                *i += 1;
                entries.push((key, parse_value(b, i)?));
                skip_ws(b, i);
                match *b.get(*i)? {
                    b',' => *i += 1,
                    b'}' => {
                        *i += 1;
                        return Some(Json::Obj(entries));
                    }
                    _ => return None,
                }
            }
        }
        _ => {
            let start = *i;
            while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                *i += 1;
            }
            if *i == start {
                return None;
            }
            std::str::from_utf8(&b[start..*i])
                .ok()?
                .parse::<f64>()
                .ok()
                .map(Json::Num)
        }
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Option<String> {
    if *b.get(*i)? != b'"' {
        return None;
    }
    *i += 1;
    let mut out = Vec::new();
    loop {
        match *b.get(*i)? {
            b'"' => {
                *i += 1;
                return String::from_utf8(out).ok();
            }
            b'\\' => {
                *i += 1;
                match *b.get(*i)? {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let hex = b.get(*i + 1..*i + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.extend_from_slice(char::from_u32(code)?.to_string().as_bytes());
                        *i += 4;
                    }
                    _ => return None,
                }
                *i += 1;
            }
            c => {
                out.push(c);
                *i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{flat_policy, PolicyNode, PolicyTree};
    use std::collections::BTreeMap;

    fn usage(pairs: &[(&str, f64)]) -> BTreeMap<GridUser, f64> {
        pairs.iter().map(|(n, v)| (GridUser::new(*n), *v)).collect()
    }

    fn nested_tree() -> FairshareTree {
        let policy = PolicyTree::new(PolicyNode::group(
            "root",
            1.0,
            vec![
                PolicyNode::group(
                    "physics",
                    2.0,
                    vec![PolicyNode::user("alice", 3.0), PolicyNode::user("bob", 1.0)],
                ),
                PolicyNode::group("biology", 1.0, vec![PolicyNode::user("carol", 1.0)]),
            ],
        ))
        .unwrap();
        FairshareTree::compute(
            &policy,
            &usage(&[("alice", 600.0), ("bob", 100.0), ("carol", 300.0)]),
            &FairshareConfig::default(),
            42.0,
        )
    }

    #[test]
    fn capture_replays_bit_for_bit_for_all_projections() {
        let tree = nested_tree();
        for kind in ProjectionKind::ALL {
            let served = kind
                .build()
                .project(&tree)
                .remove(&GridUser::new("alice"))
                .unwrap();
            let ex = Explanation::capture(&tree, &GridUser::new("alice"), kind).unwrap();
            assert_eq!(ex.factor.to_bits(), served.to_bits(), "{kind:?} capture");
            assert_eq!(ex.replay().to_bits(), served.to_bits(), "{kind:?} replay");
            assert!(ex.verify(), "{kind:?} verify");
        }
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let tree = nested_tree();
        for kind in ProjectionKind::ALL {
            let ex = Explanation::capture(&tree, &GridUser::new("bob"), kind).unwrap();
            let parsed = Explanation::from_json(&ex.to_json()).unwrap();
            assert_eq!(parsed, ex, "{kind:?}");
            assert_eq!(parsed.replay().to_bits(), ex.factor.to_bits());
            assert!(parsed.verify());
        }
    }

    #[test]
    fn levels_decompose_the_distance() {
        let tree = nested_tree();
        let ex = Explanation::capture(&tree, &GridUser::new("alice"), ProjectionKind::Percental)
            .unwrap();
        assert_eq!(ex.levels.len(), 2);
        assert_eq!(ex.levels[0].path, "/physics");
        assert_eq!(ex.levels[1].path, "/physics/alice");
        for l in &ex.levels {
            let combined = ex.k_weight * l.rel + (1.0 - ex.k_weight) * l.abs;
            assert_eq!(combined.to_bits(), l.distance.to_bits());
        }
        assert_eq!(ex.vector.len(), ex.tree_depth);
    }

    #[test]
    fn missing_user_yields_none() {
        let tree = nested_tree();
        assert!(
            Explanation::capture(&tree, &GridUser::new("ghost"), ProjectionKind::Percental)
                .is_none()
        );
    }

    #[test]
    fn render_mentions_every_component() {
        let tree = nested_tree();
        let ex = Explanation::capture(&tree, &GridUser::new("carol"), ProjectionKind::Dictionary)
            .unwrap();
        let text = ex.render();
        assert!(text.contains("carol"));
        assert!(text.contains("dictionary"));
        assert!(text.contains("/biology/carol"));
        assert!(text.contains("bit-exact"));
    }

    #[test]
    fn flat_tree_explains_too() {
        let policy = flat_policy(&[("a", 0.6), ("b", 0.4)]).unwrap();
        let tree = FairshareTree::compute(
            &policy,
            &usage(&[("a", 10.0), ("b", 990.0)]),
            &FairshareConfig::default(),
            0.0,
        );
        for kind in ProjectionKind::ALL {
            let ex = Explanation::capture(&tree, &GridUser::new("a"), kind).unwrap();
            assert!(ex.verify(), "{kind:?}");
            let parsed = Explanation::from_json(&ex.to_json()).unwrap();
            assert_eq!(parsed, ex);
        }
    }

    #[test]
    fn tampered_capture_fails_verification() {
        let tree = nested_tree();
        let mut ex =
            Explanation::capture(&tree, &GridUser::new("alice"), ProjectionKind::Percental)
                .unwrap();
        ex.factor += 1e-9;
        assert!(!ex.verify(), "altered factor must not verify");
    }
}
