//! Share-policy definition files.
//!
//! Aequus uses the grid identity "throughout the entire fairshare
//! prioritization process ranging from **parsing share policy definitions**
//! to associating newly arrived jobs with historical usage" (§III-B). This
//! module defines that textual format: a line-based, indentation-free policy
//! description an administrator can keep in version control and a PDS can
//! load.
//!
//! ```text
//! # comments and blank lines are ignored
//! /local            60
//! /grid             40   mount=national-pds
//! /grid/atlas       70   user=C=SE/O=CERN/CN=atlas-prod
//! /grid/cms         30
//! ```
//!
//! Rules: one node per line — absolute path, share weight, optional
//! `user=<grid identity>` (leaf) or `mount=<source>` (mount point). Parents
//! may be declared implicitly by their children (they default to groups with
//! the share given on their own line, or weight 1 if never mentioned).
//! Un-annotated leaves become users whose grid identity is the leaf name.

use crate::ids::{EntityPath, GridUser};
use crate::policy::{PolicyError, PolicyNode, PolicyNodeKind, PolicyTree};

/// Errors raised when parsing a policy file.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyFileError {
    /// A line could not be split into `path share [attr]`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The same path was declared twice.
    DuplicatePath {
        /// 1-based line number of the second declaration.
        line: usize,
        /// The offending path.
        path: String,
    },
    /// The assembled tree failed policy validation.
    Invalid(PolicyError),
}

impl std::fmt::Display for PolicyFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyFileError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            PolicyFileError::DuplicatePath { line, path } => {
                write!(f, "line {line}: duplicate declaration of {path}")
            }
            PolicyFileError::Invalid(e) => write!(f, "invalid policy: {e}"),
        }
    }
}

impl std::error::Error for PolicyFileError {}

#[derive(Debug, Clone)]
struct Declaration {
    path: EntityPath,
    share: f64,
    user: Option<GridUser>,
    mount: Option<String>,
}

/// Parse a policy definition file into a [`PolicyTree`].
pub fn parse_policy(text: &str) -> Result<PolicyTree, PolicyFileError> {
    let mut decls: Vec<Declaration> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let path_str = parts.next().expect("non-empty line has a token");
        if !path_str.starts_with('/') {
            return Err(PolicyFileError::Malformed {
                line: line_no,
                reason: format!("path must start with '/': {path_str}"),
            });
        }
        let path = EntityPath::parse(path_str);
        if path.is_root() {
            return Err(PolicyFileError::Malformed {
                line: line_no,
                reason: "the root cannot be declared".to_string(),
            });
        }
        let share: f64 = parts
            .next()
            .ok_or_else(|| PolicyFileError::Malformed {
                line: line_no,
                reason: "missing share".to_string(),
            })?
            .parse()
            .map_err(|_| PolicyFileError::Malformed {
                line: line_no,
                reason: "share is not a number".to_string(),
            })?;
        let mut user = None;
        let mut mount = None;
        for attr in parts {
            if let Some(v) = attr.strip_prefix("user=") {
                user = Some(GridUser::new(v));
            } else if let Some(v) = attr.strip_prefix("mount=") {
                mount = Some(v.to_string());
            } else {
                return Err(PolicyFileError::Malformed {
                    line: line_no,
                    reason: format!("unknown attribute {attr}"),
                });
            }
        }
        if user.is_some() && mount.is_some() {
            return Err(PolicyFileError::Malformed {
                line: line_no,
                reason: "a node cannot be both a user and a mount point".to_string(),
            });
        }
        if decls.iter().any(|d| d.path == path) {
            return Err(PolicyFileError::DuplicatePath {
                line: line_no,
                path: path.to_string(),
            });
        }
        decls.push(Declaration {
            path,
            share,
            user,
            mount,
        });
    }

    // Assemble the tree: insert in path-depth order so parents exist first.
    decls.sort_by_key(|d| d.path.depth());
    let mut root = PolicyNode::group("root", 1.0, Vec::new());
    for d in &decls {
        insert(&mut root, d)?;
    }
    // Leaves without annotations become users named after themselves.
    promote_bare_leaves(&mut root);
    PolicyTree::new(root).map_err(PolicyFileError::Invalid)
}

fn insert(root: &mut PolicyNode, d: &Declaration) -> Result<(), PolicyFileError> {
    let comps = d.path.components();
    let mut node = root;
    // Walk/create intermediate groups.
    for comp in &comps[..comps.len() - 1] {
        let pos = match node.children.iter().position(|c| &c.name == comp) {
            Some(p) => p,
            None => {
                node.children
                    .push(PolicyNode::group(comp.clone(), 1.0, Vec::new()));
                node.children.len() - 1
            }
        };
        node = &mut node.children[pos];
    }
    let leaf_name = comps.last().expect("non-root path");
    if let Some(existing) = node.children.iter_mut().find(|c| &c.name == leaf_name) {
        // Declared after being implicitly created as a parent: set its share.
        existing.share = d.share;
        return Ok(());
    }
    let new_node = if let Some(user) = &d.user {
        PolicyNode::user_with_identity(leaf_name.clone(), d.share, user.clone())
    } else if let Some(source) = &d.mount {
        PolicyNode::mount_point(leaf_name.clone(), d.share, source.clone())
    } else {
        // May become a group if children follow, or a user if it stays bare.
        PolicyNode::group(leaf_name.clone(), d.share, Vec::new())
    };
    node.children.push(new_node);
    Ok(())
}

fn promote_bare_leaves(node: &mut PolicyNode) {
    for child in &mut node.children {
        promote_bare_leaves(child);
        if child.children.is_empty() && matches!(child.kind, PolicyNodeKind::Group) {
            child.kind = PolicyNodeKind::User(GridUser::new(child.name.clone()));
        }
    }
}

/// Serialize a policy tree back to the file format (stable round-trip).
pub fn to_policy_file(tree: &PolicyTree) -> String {
    let mut out = String::from("# Aequus share policy\n");
    fn walk(node: &PolicyNode, path: &EntityPath, out: &mut String) {
        for child in &node.children {
            let child_path = path.child(&child.name);
            let attr = match &child.kind {
                PolicyNodeKind::User(u) if u.as_str() != child.name => {
                    format!("   user={}", u.as_str())
                }
                PolicyNodeKind::MountPoint { source } => format!("   mount={source}"),
                _ => String::new(),
            };
            out.push_str(&format!(
                "{:<24} {}{}\n",
                child_path.to_string(),
                child.share,
                attr
            ));
            walk(child, &child_path, out);
        }
    }
    walk(tree.root(), &EntityPath::root(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# site policy
/local            60
/grid             40   mount=national-pds
/grid/atlas       70   user=CN=atlas-prod
/grid/cms         30
";

    #[test]
    fn parses_sample() {
        let t = parse_policy(SAMPLE).unwrap();
        assert!((t.absolute_share(&EntityPath::parse("/local")).unwrap() - 0.6).abs() < 1e-12);
        assert!(
            (t.absolute_share(&EntityPath::parse("/grid/atlas")).unwrap() - 0.4 * 0.7).abs()
                < 1e-12
        );
        // atlas carries an explicit grid identity; cms defaults to its name.
        let users = t.users();
        assert!(users.iter().any(|(_, u)| u.as_str() == "CN=atlas-prod"));
        assert!(users.iter().any(|(_, u)| u.as_str() == "cms"));
        // /local is a bare leaf → a user named local.
        assert!(users.iter().any(|(_, u)| u.as_str() == "local"));
    }

    #[test]
    fn implicit_parent_then_declared() {
        let text = "/g/a 1\n/g 5\n";
        let t = parse_policy(text).unwrap();
        // /g got its declared share even though /g/a came first.
        let n = t.node_at(&EntityPath::parse("/g")).unwrap();
        assert_eq!(n.share, 5.0);
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(
            parse_policy("nopath 1\n"),
            Err(PolicyFileError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            parse_policy("/a\n"),
            Err(PolicyFileError::Malformed { .. })
        ));
        assert!(matches!(
            parse_policy("/a x\n"),
            Err(PolicyFileError::Malformed { .. })
        ));
        assert!(matches!(
            parse_policy("/a 1 frobnicate=yes\n"),
            Err(PolicyFileError::Malformed { .. })
        ));
        assert!(matches!(
            parse_policy("/a 1 user=x mount=y\n"),
            Err(PolicyFileError::Malformed { .. })
        ));
    }

    #[test]
    fn rejects_duplicates() {
        assert!(matches!(
            parse_policy("/a 1\n/a 2\n"),
            Err(PolicyFileError::DuplicatePath { line: 2, .. })
        ));
    }

    #[test]
    fn roundtrip() {
        let t = parse_policy(SAMPLE).unwrap();
        let text = to_policy_file(&t);
        let back = parse_policy(&text).unwrap();
        assert_eq!(back.users().len(), t.users().len());
        for (path, user) in t.users() {
            assert!(
                (back.absolute_share(&path).unwrap() - t.absolute_share(&path).unwrap()).abs()
                    < 1e-12,
                "{path}"
            );
            assert_eq!(back.path_of_user(&user), Some(path));
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let t = parse_policy("# only comments\n\n   \n/a 1\n").unwrap();
        assert_eq!(t.users().len(), 1);
    }
}
