//! Usage accounting (§II-A constituent 2): per-job usage records are rolled
//! up into per-user, per-interval histograms; sites exchange these in a
//! compact form "relaying the combined usage of each user on each site while
//! omitting the details of individual jobs".

use crate::decay::DecayPolicy;
use crate::ids::{GridUser, JobId, SiteId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-user charge per slot index — the cell grid summaries and mirrors
/// are built from.
pub type UserCells = BTreeMap<GridUser, BTreeMap<u64, f64>>;

/// The resource consumption of one completed job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageRecord {
    /// Job identity.
    pub job: JobId,
    /// Grid identity of the owning user.
    pub user: GridUser,
    /// Site where the job executed.
    pub site: SiteId,
    /// Cores occupied.
    pub cores: u32,
    /// Execution start, seconds.
    pub start_s: f64,
    /// Execution end, seconds (≥ start).
    pub end_s: f64,
}

impl UsageRecord {
    /// Charged usage: core-seconds of wall-clock occupancy.
    pub fn charge(&self) -> f64 {
        self.cores as f64 * (self.end_s - self.start_s).max(0.0)
    }
}

/// Per-user usage histogram over fixed time slots ("per-user histograms for
/// configurable time intervals", §II-A).
///
/// Job charges are spread proportionally over the slots the job's execution
/// overlaps, so long jobs decay gradually rather than as a lump at
/// completion.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UsageHistogram {
    slot_s: f64,
    /// charge per (user, slot index).
    slots: BTreeMap<GridUser, BTreeMap<u64, f64>>,
    /// Total charge ever recorded, for conservation checks.
    total: f64,
}

impl UsageHistogram {
    /// Create a histogram with the given slot duration in seconds.
    ///
    /// # Panics
    /// Panics if `slot_s` is not strictly positive.
    pub fn new(slot_s: f64) -> Self {
        assert!(slot_s > 0.0, "slot duration must be positive");
        Self {
            slot_s,
            slots: BTreeMap::new(),
            total: 0.0,
        }
    }

    /// Slot duration in seconds.
    pub fn slot_duration(&self) -> f64 {
        self.slot_s
    }

    /// Record a completed job, spreading its charge across overlapped slots.
    pub fn record(&mut self, rec: &UsageRecord) {
        let charge = rec.charge();
        if charge <= 0.0 {
            return;
        }
        self.total += charge;
        let user_slots = self.slots.entry(rec.user.clone()).or_default();
        let first = (rec.start_s / self.slot_s).floor().max(0.0) as u64;
        let last = (rec.end_s / self.slot_s).floor().max(0.0) as u64;
        if first == last {
            *user_slots.entry(first).or_insert(0.0) += charge;
            return;
        }
        let rate = rec.cores as f64; // core-seconds per second
        for slot in first..=last {
            let slot_start = slot as f64 * self.slot_s;
            let slot_end = slot_start + self.slot_s;
            let overlap = rec.end_s.min(slot_end) - rec.start_s.max(slot_start);
            if overlap > 0.0 {
                *user_slots.entry(slot).or_insert(0.0) += rate * overlap;
            }
        }
    }

    /// Add `charge` core-seconds to one (user, slot) cell. This is the
    /// receiver-side primitive of the reliable exchange: the USS computes the
    /// positive delta of an incoming cell against its per-peer mirror and
    /// applies exactly that, so duplicated or reordered deliveries never
    /// double-count. Non-positive charges are ignored.
    pub fn add_charge(&mut self, user: &GridUser, slot: u64, charge: f64) {
        if charge <= 0.0 {
            return;
        }
        *self
            .slots
            .entry(user.clone())
            .or_default()
            .entry(slot)
            .or_insert(0.0) += charge;
        self.total += charge;
    }

    /// Merge a compact per-user summary from another site.
    pub fn merge_summary(&mut self, summary: &UsageSummary) {
        for (user, slots) in &summary.per_user {
            let user_slots = self.slots.entry(user.clone()).or_default();
            for (&slot, &charge) in slots {
                *user_slots.entry(slot).or_insert(0.0) += charge;
                self.total += charge;
            }
        }
    }

    /// Decay-weighted total usage of `user` as seen at time `now_s`.
    pub fn decayed_usage(&self, user: &GridUser, now_s: f64, decay: DecayPolicy) -> f64 {
        let Some(slots) = self.slots.get(user) else {
            return 0.0;
        };
        slots
            .iter()
            .map(|(&slot, &charge)| {
                let slot_center = (slot as f64 + 0.5) * self.slot_s;
                charge * decay.weight(now_s - slot_center)
            })
            .sum()
    }

    /// Usage of `user` weighted relative to a fixed reference epoch
    /// (separable decays only; see [`DecayPolicy::epoch_weight`]). Equal to
    /// the decayed usage at `epoch_s` up to the unclamped handling of slots
    /// newer than the epoch. The incremental UMS caches these weights so
    /// advancing time never dirties unchanged users.
    pub fn epoch_usage(&self, user: &GridUser, epoch_s: f64, decay: DecayPolicy) -> f64 {
        let Some(slots) = self.slots.get(user) else {
            return 0.0;
        };
        slots
            .iter()
            .map(|(&slot, &charge)| {
                let slot_center = (slot as f64 + 0.5) * self.slot_s;
                charge * decay.epoch_weight(epoch_s - slot_center)
            })
            .sum()
    }

    /// Raw (undecayed) total usage of `user`.
    pub fn raw_usage(&self, user: &GridUser) -> f64 {
        self.slots
            .get(user)
            .map(|s| s.values().sum())
            .unwrap_or(0.0)
    }

    /// Total charge recorded across all users (conservation invariant:
    /// equals the sum of `raw_usage` over all users).
    pub fn total_recorded(&self) -> f64 {
        self.total
    }

    /// All users with recorded usage.
    pub fn users(&self) -> impl Iterator<Item = &GridUser> {
        self.slots.keys()
    }

    /// Decay-weighted usage for every user at once.
    pub fn decayed_all(&self, now_s: f64, decay: DecayPolicy) -> BTreeMap<GridUser, f64> {
        self.slots
            .keys()
            .map(|u| (u.clone(), self.decayed_usage(u, now_s, decay)))
            .collect()
    }

    /// Produce the compact cross-site exchange summary: per-user charge per
    /// slot, no job-level detail. `since_slot` allows incremental exchange
    /// (only slots ≥ the given index are included).
    pub fn summary(&self, site: SiteId, since_slot: u64) -> UsageSummary {
        UsageSummary {
            site,
            seq: 0,
            slot_s: self.slot_s,
            per_user: self
                .slots
                .iter()
                .filter_map(|(u, slots)| {
                    let filtered: BTreeMap<u64, f64> =
                        slots.range(since_slot..).map(|(&k, &v)| (k, v)).collect();
                    (!filtered.is_empty()).then(|| (u.clone(), filtered))
                })
                .collect(),
            relayed: BTreeMap::new(),
        }
    }

    /// Drop slots older than `horizon_s` before `now_s` (storage compaction;
    /// safe once the decay weight of those slots is negligible).
    pub fn compact(&mut self, now_s: f64, horizon_s: f64) {
        let cutoff_slot = ((now_s - horizon_s) / self.slot_s).floor().max(0.0) as u64;
        for slots in self.slots.values_mut() {
            *slots = slots.split_off(&cutoff_slot);
        }
        self.slots.retain(|_, s| !s.is_empty());
    }
}

/// Compact per-user usage totals exchanged between sites' USS services.
///
/// Summaries produced by the reliable exchange carry **absolute** cumulative
/// charge per included (user, slot) cell — not deltas. Per-cell charge is
/// monotone non-decreasing at the publisher, so receivers merge by taking
/// the positive difference against a per-peer mirror, which makes retries,
/// duplicates, reordering, and snapshot catch-up all idempotent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageSummary {
    /// Originating site.
    pub site: SiteId,
    /// Per-publisher monotonically increasing sequence number, 1-based.
    /// `0` marks an unsequenced summary (ad-hoc construction outside the
    /// reliable exchange, e.g. [`UsageHistogram::summary`]); receivers merge
    /// it but skip gap tracking.
    pub seq: u64,
    /// Slot duration the totals are binned with.
    pub slot_s: f64,
    /// Per-user charge per slot index (absolute cumulative values in the
    /// reliable exchange; see the struct docs).
    pub per_user: BTreeMap<GridUser, BTreeMap<u64, f64>>,
    /// Cells this publisher is *relaying* on behalf of other origins, keyed
    /// by originating site — the per-hop aggregation payload of the Tree
    /// and Hub overlays. Like `per_user`, values are absolute cumulative
    /// charge as last heard from the origin, so the positive-delta merge
    /// stays idempotent across any number of forwarding hops or delivery
    /// paths. Empty in full-mesh operation.
    pub relayed: BTreeMap<SiteId, UserCells>,
}

impl UsageSummary {
    /// Total charge carried by this summary, own and relayed sections.
    pub fn total(&self) -> f64 {
        let own: f64 = self.per_user.values().flat_map(|s| s.values()).sum();
        let relayed: f64 = self
            .relayed
            .values()
            .flat_map(|cells| cells.values().flat_map(|s| s.values()))
            .sum();
        own + relayed
    }

    /// Number of (user, slot) cells across all sections.
    pub fn cells(&self) -> usize {
        let own: usize = self.per_user.values().map(|s| s.len()).sum();
        let relayed: usize = self
            .relayed
            .values()
            .flat_map(|cells| cells.values().map(|s| s.len()))
            .sum();
        own + relayed
    }

    /// Serialized size in bytes under `enc` — the *actual* encoded length
    /// (see [`crate::codec`]), not a model, so gossip byte accounting in
    /// the profiler and the bench gates measure what the codec produces.
    pub fn wire_bytes(&self, enc: crate::codec::Encoding) -> u64 {
        crate::codec::encoded_size(self, enc) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(user: &str, cores: u32, start: f64, end: f64) -> UsageRecord {
        UsageRecord {
            job: JobId(0),
            user: GridUser::new(user),
            site: SiteId(0),
            cores,
            start_s: start,
            end_s: end,
        }
    }

    #[test]
    fn charge_is_core_seconds() {
        assert_eq!(rec("a", 4, 10.0, 20.0).charge(), 40.0);
        assert_eq!(rec("a", 4, 20.0, 10.0).charge(), 0.0);
    }

    #[test]
    fn record_single_slot() {
        let mut h = UsageHistogram::new(100.0);
        h.record(&rec("a", 1, 10.0, 30.0));
        assert_eq!(h.raw_usage(&GridUser::new("a")), 20.0);
        assert_eq!(h.raw_usage(&GridUser::new("b")), 0.0);
    }

    #[test]
    fn record_spreads_across_slots() {
        let mut h = UsageHistogram::new(100.0);
        // Job spans slots 0, 1, 2: 50s in slot 0, 100s in slot 1, 50s in slot 2.
        h.record(&rec("a", 2, 50.0, 250.0));
        let total = h.raw_usage(&GridUser::new("a"));
        assert!((total - 400.0).abs() < 1e-9);
        // Decay with a window covering only recent slots sees partial usage.
        let w = h.decayed_usage(
            &GridUser::new("a"),
            250.0,
            DecayPolicy::Window { window_s: 120.0 },
        );
        // Slot centers: 50 (age 200, out), 150 (age 100, in), 250 (age 0, in).
        assert!((w - (200.0 + 100.0)).abs() < 1e-9, "{w}");
    }

    #[test]
    fn conservation_total_equals_sum() {
        let mut h = UsageHistogram::new(60.0);
        h.record(&rec("a", 1, 0.0, 90.0));
        h.record(&rec("b", 3, 30.0, 150.0));
        h.record(&rec("a", 2, 200.0, 260.0));
        let sum: f64 = ["a", "b"]
            .iter()
            .map(|u| h.raw_usage(&GridUser::new(*u)))
            .sum();
        assert!((h.total_recorded() - sum).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_job_ignored() {
        let mut h = UsageHistogram::new(60.0);
        h.record(&rec("a", 8, 100.0, 100.0));
        assert_eq!(h.total_recorded(), 0.0);
    }

    #[test]
    fn summary_roundtrip_merge() {
        let mut h1 = UsageHistogram::new(60.0);
        h1.record(&rec("a", 1, 0.0, 120.0));
        let s = h1.summary(SiteId(1), 0);
        assert!((s.total() - 120.0).abs() < 1e-9);

        let mut h2 = UsageHistogram::new(60.0);
        h2.record(&rec("a", 1, 0.0, 60.0));
        h2.merge_summary(&s);
        assert!((h2.raw_usage(&GridUser::new("a")) - 180.0).abs() < 1e-9);
    }

    #[test]
    fn incremental_summary_filters_old_slots() {
        let mut h = UsageHistogram::new(100.0);
        h.record(&rec("a", 1, 50.0, 60.0)); // slot 0
        h.record(&rec("a", 1, 250.0, 260.0)); // slot 2
        let s = h.summary(SiteId(0), 2);
        assert_eq!(s.cells(), 1);
        assert!((s.total() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn compact_drops_old_slots() {
        let mut h = UsageHistogram::new(100.0);
        h.record(&rec("a", 1, 50.0, 60.0));
        h.record(&rec("a", 1, 1050.0, 1060.0));
        h.compact(1100.0, 500.0);
        assert!((h.raw_usage(&GridUser::new("a")) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn decay_none_sees_all_history() {
        let mut h = UsageHistogram::new(10.0);
        h.record(&rec("a", 1, 0.0, 10.0));
        let v = h.decayed_usage(&GridUser::new("a"), 1e9, DecayPolicy::None);
        assert!((v - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_slot_panics() {
        UsageHistogram::new(0.0);
    }

    #[test]
    fn add_charge_updates_cell_and_total() {
        let mut h = UsageHistogram::new(60.0);
        h.add_charge(&GridUser::new("a"), 3, 25.0);
        h.add_charge(&GridUser::new("a"), 3, 5.0);
        h.add_charge(&GridUser::new("a"), 4, -1.0); // ignored
        h.add_charge(&GridUser::new("a"), 4, 0.0); // ignored
        assert!((h.raw_usage(&GridUser::new("a")) - 30.0).abs() < 1e-12);
        assert!((h.total_recorded() - 30.0).abs() < 1e-12);
    }
}
