//! Arena plumbing for the incremental fairshare engine: dense node ids, a
//! path interner, and the dirty-set protocol that carries "what changed"
//! from the usage/policy services down to
//! [`FairshareTree::recompute_dirty`](crate::fairshare::FairshareTree::recompute_dirty).
//!
//! The seed implementation kept every traversal keyed by cloned
//! [`EntityPath`]s in `BTreeMap`s; the arena replaces that with `u32`
//! indices into a flat node vector, so the recompute hot path never
//! allocates and only touches the subtrees named by the [`DirtySet`].

use crate::ids::{EntityPath, GridUser};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Dense index of a node in the fairshare arena.
///
/// Ids are assigned in depth-first policy order, are stable across
/// incremental recomputes, and are only reassigned by a full rebuild
/// (policy structure change).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena slot this id names.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Stable dense index of a grid user in a factor table.
///
/// Unlike [`NodeId`], user ids survive full rebuilds: the FCS assigns them
/// on first sight and never reuses them, so RMS-side callers can hold a
/// `UserId` across refreshes and query priorities without cloning or
/// re-hashing `GridUser` keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

impl UserId {
    /// The factor-table slot this id names.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional `EntityPath` ↔ [`NodeId`] mapping for one arena.
///
/// Forward lookups serve the path-based public API; the reverse direction
/// is stored on the arena nodes themselves (parent links), so the interner
/// only keeps the forward map.
#[derive(Debug, Clone, Default)]
pub struct PathInterner {
    map: BTreeMap<EntityPath, NodeId>,
}

impl PathInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `path` as `id`. Re-interning an existing path overwrites.
    pub fn insert(&mut self, path: EntityPath, id: NodeId) {
        self.map.insert(path, id);
    }

    /// Resolve a path to its node id.
    pub fn get(&self, path: &EntityPath) -> Option<NodeId> {
        self.map.get(path).copied()
    }

    /// Number of interned paths.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no paths are interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate interned `(path, id)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&EntityPath, NodeId)> {
        self.map.iter().map(|(p, id)| (p, *id))
    }
}

/// Accumulates which parts of the fairshare state changed since the last
/// refresh: usage changes per user, policy share edits per path, or "all"
/// (structural change / non-separable decay fallback).
///
/// Produced by `Ums`/`Uss` (usage ingestion and summary merges) and `Pds`
/// (policy edits); consumed by `Fcs::refresh`, which forwards it to
/// [`FairshareTree::recompute_dirty`](crate::fairshare::FairshareTree::recompute_dirty).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySet {
    users: BTreeSet<GridUser>,
    paths: BTreeSet<EntityPath>,
    all: bool,
}

impl DirtySet {
    /// An empty (clean) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark one user's usage as changed.
    pub fn mark_user(&mut self, user: GridUser) {
        if !self.all {
            self.users.insert(user);
        }
    }

    /// Mark the policy share at `path` as changed.
    pub fn mark_path(&mut self, path: EntityPath) {
        if !self.all {
            self.paths.insert(path);
        }
    }

    /// Mark everything as changed (forces a full recompute downstream).
    pub fn mark_all(&mut self) {
        self.all = true;
        self.users.clear();
        self.paths.clear();
    }

    /// Whether nothing is marked.
    pub fn is_empty(&self) -> bool {
        !self.all && self.users.is_empty() && self.paths.is_empty()
    }

    /// Whether a full recompute is required.
    pub fn is_all(&self) -> bool {
        self.all
    }

    /// Users with changed usage.
    pub fn users(&self) -> impl Iterator<Item = &GridUser> {
        self.users.iter()
    }

    /// Paths with changed policy shares.
    pub fn paths(&self) -> impl Iterator<Item = &EntityPath> {
        self.paths.iter()
    }

    /// Number of marked users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Absorb another dirty set.
    pub fn merge(&mut self, other: &DirtySet) {
        if other.all {
            self.mark_all();
            return;
        }
        if self.all {
            return;
        }
        self.users.extend(other.users.iter().cloned());
        self.paths.extend(other.paths.iter().cloned());
    }

    /// Drain this set, returning its contents and leaving it clean.
    pub fn take(&mut self) -> DirtySet {
        std::mem::take(self)
    }
}

/// What one [`recompute_dirty`](crate::fairshare::FairshareTree::recompute_dirty)
/// call did.
#[derive(Debug, Clone, Default)]
pub struct RecomputeStats {
    /// True when the call fell back to a full from-scratch recompute.
    pub full: bool,
    /// Nodes whose subtree-usage aggregate was recomputed — for a single
    /// dirty user this is exactly the user's root→leaf path.
    pub nodes_recomputed: u64,
    /// Nodes whose derived shares (normalized policy/usage share, distance,
    /// element) were refreshed: every member of a sibling group containing a
    /// recomputed node.
    pub shares_refreshed: u64,
    /// Arena nodes whose derived state changed in any component — the roots
    /// of the subtrees whose users need re-projection.
    pub changed_elements: Vec<NodeId>,
}

impl RecomputeStats {
    /// Total per-node work performed (aggregates + derived refreshes).
    pub fn total_work(&self) -> u64 {
        self.nodes_recomputed + self.shares_refreshed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_set_collapses_into_all() {
        let mut d = DirtySet::new();
        d.mark_user(GridUser::new("a"));
        d.mark_path(EntityPath::parse("/g/a"));
        assert!(!d.is_empty());
        assert!(!d.is_all());
        d.mark_all();
        assert!(d.is_all());
        assert_eq!(d.users().count(), 0);
        assert_eq!(d.paths().count(), 0);
        // Further marks are absorbed.
        d.mark_user(GridUser::new("b"));
        assert_eq!(d.users().count(), 0);
    }

    #[test]
    fn merge_and_take() {
        let mut a = DirtySet::new();
        a.mark_user(GridUser::new("x"));
        let mut b = DirtySet::new();
        b.mark_user(GridUser::new("y"));
        b.mark_path(EntityPath::parse("/y"));
        a.merge(&b);
        assert_eq!(a.user_count(), 2);
        assert_eq!(a.paths().count(), 1);
        let taken = a.take();
        assert!(a.is_empty());
        assert_eq!(taken.user_count(), 2);

        let mut c = DirtySet::new();
        c.mark_all();
        let mut d = DirtySet::new();
        d.mark_user(GridUser::new("z"));
        d.merge(&c);
        assert!(d.is_all());
    }

    #[test]
    fn interner_roundtrip() {
        let mut i = PathInterner::new();
        let p = EntityPath::parse("/g/u");
        i.insert(EntityPath::root(), NodeId(0));
        i.insert(p.clone(), NodeId(3));
        assert_eq!(i.get(&p), Some(NodeId(3)));
        assert_eq!(i.get(&EntityPath::parse("/missing")), None);
        assert_eq!(i.len(), 2);
        assert_eq!(NodeId(3).index(), 3);
    }
}
