//! The dominating user classes of the 2012 Swedish national grid trace
//! (§IV-1): "the vast majority of jobs are submitted by three different user
//! identities", with everyone else grouped as U_oth.

use serde::{Deserialize, Serialize};

/// Seconds in the modeled calendar year.
pub const YEAR_S: f64 = 365.0 * 24.0 * 3600.0;

/// Seconds in a day (histogram bin size of Figures 4 and 5).
pub const DAY_S: f64 = 24.0 * 3600.0;

/// The four user classes of the workload characterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UserClass {
    /// Most active user: 65.25% of wall-clock usage, 81.03% of jobs.
    /// "A large scale research project" with ~3-month experimental cycles.
    U65,
    /// Second most active: 30.49% of usage, 6.58% of jobs.
    U30,
    /// Third: 2.86% of usage, 9.47% of jobs — bursty, short jobs.
    U3,
    /// Everyone else: 1.40% of usage, 2.93% of jobs.
    Uoth,
}

impl UserClass {
    /// All classes in paper order.
    pub const ALL: [UserClass; 4] = [
        UserClass::U65,
        UserClass::U30,
        UserClass::U3,
        UserClass::Uoth,
    ];

    /// Display / grid-identity name.
    pub fn name(&self) -> &'static str {
        match self {
            UserClass::U65 => "U65",
            UserClass::U30 => "U30",
            UserClass::U3 => "U3",
            UserClass::Uoth => "Uoth",
        }
    }

    /// Fraction of total wall-clock time usage in the original trace.
    pub fn usage_share(&self) -> f64 {
        match self {
            UserClass::U65 => 0.6525,
            UserClass::U30 => 0.3049,
            UserClass::U3 => 0.0286,
            UserClass::Uoth => 0.0140,
        }
    }

    /// Fraction of submitted jobs in the original trace.
    pub fn job_share(&self) -> f64 {
        match self {
            UserClass::U65 => 0.8103,
            UserClass::U30 => 0.0658,
            UserClass::U3 => 0.0947,
            UserClass::Uoth => 0.0293,
        }
    }

    /// Parse from a user name.
    pub fn parse(name: &str) -> Option<UserClass> {
        Self::ALL.iter().copied().find(|c| c.name() == name)
    }
}

/// The baseline policy of the paper's tests: "the actual share from the
/// workloads are used as targets for most of the tests" — (name, share)
/// pairs matching the usage shares.
pub fn baseline_policy_shares() -> Vec<(&'static str, f64)> {
    UserClass::ALL
        .iter()
        .map(|c| (c.name(), c.usage_share()))
        .collect()
}

/// The non-optimal policy of §IV-A-3: "a target policy of 70% for U65, 20%
/// for U30, 8% for U3 and 2% for U_oth".
pub fn nonoptimal_policy_shares() -> Vec<(&'static str, f64)> {
    vec![("U65", 0.70), ("U30", 0.20), ("U3", 0.08), ("Uoth", 0.02)]
}

/// The bursty test's job mix (§IV-A-5): 45.5/6.5/45.5/3 percent of jobs for
/// U65/U30/U3/Uoth.
pub fn bursty_job_shares() -> Vec<(UserClass, f64)> {
    vec![
        (UserClass::U65, 0.455),
        (UserClass::U30, 0.065),
        (UserClass::U3, 0.455),
        (UserClass::Uoth, 0.03),
    ]
}

/// The bursty test's resulting wall-clock usage shares: 47/38.5/12/2.5 %.
pub fn bursty_usage_shares() -> Vec<(UserClass, f64)> {
    vec![
        (UserClass::U65, 0.47),
        (UserClass::U30, 0.385),
        (UserClass::U3, 0.12),
        (UserClass::Uoth, 0.025),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let usage: f64 = UserClass::ALL.iter().map(|c| c.usage_share()).sum();
        let jobs: f64 = UserClass::ALL.iter().map(|c| c.job_share()).sum();
        assert!((usage - 1.0).abs() < 1e-3, "{usage}");
        assert!((jobs - 1.0).abs() < 1e-3, "{jobs}");
    }

    #[test]
    fn bursty_mix_sums_to_one() {
        // The paper prints 45.5/6.5/45.5/3 (%), which rounds to 100.5%;
        // keep the printed values and allow that rounding slack.
        let j: f64 = bursty_job_shares().iter().map(|(_, s)| s).sum();
        let u: f64 = bursty_usage_shares().iter().map(|(_, s)| s).sum();
        assert!((j - 1.0).abs() < 0.006, "{j}");
        assert!((u - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parse_roundtrip() {
        for c in UserClass::ALL {
            assert_eq!(UserClass::parse(c.name()), Some(c));
        }
        assert_eq!(UserClass::parse("nobody"), None);
    }

    #[test]
    fn nonoptimal_policy_matches_paper() {
        let p = nonoptimal_policy_shares();
        assert_eq!(p[0], ("U65", 0.70));
        let total: f64 = p.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
