//! Job traces: the input format of the simulated test bed.

use serde::{Deserialize, Serialize};

/// One job of a workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceJob {
    /// Submitting user (grid identity name; the paper's U65/U30/U3/Uoth).
    pub user: String,
    /// Submission time, seconds from trace start.
    pub submit_s: f64,
    /// Wall-clock duration, seconds.
    pub duration_s: f64,
    /// Processors used — "the trace is comprised exclusively of bag-of-task
    /// jobs using a single processor per job" (§IV-3).
    pub cores: u32,
}

/// A complete workload trace, kept sorted by submission time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    jobs: Vec<TraceJob>,
}

impl Trace {
    /// Build a trace, sorting jobs by submission time.
    pub fn new(mut jobs: Vec<TraceJob>) -> Self {
        jobs.sort_by(|a, b| a.submit_s.partial_cmp(&b.submit_s).unwrap());
        Self { jobs }
    }

    /// The jobs, ascending by submission time.
    pub fn jobs(&self) -> &[TraceJob] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total core·seconds of work in the trace.
    pub fn total_work(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| j.cores as f64 * j.duration_s)
            .sum()
    }

    /// Trace makespan upper bound: last submission time.
    pub fn last_submit(&self) -> f64 {
        self.jobs.last().map(|j| j.submit_s).unwrap_or(0.0)
    }

    /// Fraction of jobs per user, in descending order of count.
    pub fn job_share_by_user(&self) -> Vec<(String, f64)> {
        let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
        for j in &self.jobs {
            *counts.entry(&j.user).or_default() += 1;
        }
        let total = self.jobs.len().max(1) as f64;
        let mut out: Vec<(String, f64)> = counts
            .into_iter()
            .map(|(u, c)| (u.to_string(), c as f64 / total))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        out
    }

    /// Fraction of total wall-clock·core usage per user, descending.
    pub fn usage_share_by_user(&self) -> Vec<(String, f64)> {
        let mut usage: std::collections::BTreeMap<&str, f64> = Default::default();
        for j in &self.jobs {
            *usage.entry(&j.user).or_default() += j.cores as f64 * j.duration_s;
        }
        let total: f64 = usage.values().sum();
        let total = if total > 0.0 { total } else { 1.0 };
        let mut out: Vec<(String, f64)> = usage
            .into_iter()
            .map(|(u, v)| (u.to_string(), v / total))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        out
    }

    /// Inter-arrival times of the jobs of one user (or of all jobs when
    /// `user` is `None`), in seconds.
    pub fn inter_arrivals(&self, user: Option<&str>) -> Vec<f64> {
        let submits: Vec<f64> = self
            .jobs
            .iter()
            .filter(|j| user.is_none_or(|u| j.user == u))
            .map(|j| j.submit_s)
            .collect();
        submits.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Durations of one user's jobs (or all jobs).
    pub fn durations(&self, user: Option<&str>) -> Vec<f64> {
        self.jobs
            .iter()
            .filter(|j| user.is_none_or(|u| j.user == u))
            .map(|j| j.duration_s)
            .collect()
    }

    /// Submission times of one user's jobs (or all jobs).
    pub fn submits(&self, user: Option<&str>) -> Vec<f64> {
        self.jobs
            .iter()
            .filter(|j| user.is_none_or(|u| j.user == u))
            .map(|j| j.submit_s)
            .collect()
    }

    /// Scale the time axis by `factor` (arrival times **and** durations), as
    /// in the update-delay experiment: "we scaled the baseline test case up
    /// ten times, adjusting the arrival times and job durations while
    /// keeping the same number of jobs and same internal relations"
    /// (§IV-A-2).
    pub fn time_scaled(&self, factor: f64) -> Trace {
        Trace {
            jobs: self
                .jobs
                .iter()
                .map(|j| TraceJob {
                    user: j.user.clone(),
                    submit_s: j.submit_s * factor,
                    duration_s: j.duration_s * factor,
                    cores: j.cores,
                })
                .collect(),
        }
    }

    /// Scale only durations by `factor` (load targeting).
    pub fn duration_scaled(&self, factor: f64) -> Trace {
        Trace {
            jobs: self
                .jobs
                .iter()
                .map(|j| TraceJob {
                    duration_s: j.duration_s * factor,
                    ..j.clone()
                })
                .collect(),
        }
    }

    /// Merge with another trace (re-sorts).
    pub fn merged(&self, other: &Trace) -> Trace {
        let mut jobs = self.jobs.clone();
        jobs.extend(other.jobs.iter().cloned());
        Trace::new(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tj(user: &str, submit: f64, dur: f64) -> TraceJob {
        TraceJob {
            user: user.to_string(),
            submit_s: submit,
            duration_s: dur,
            cores: 1,
        }
    }

    #[test]
    fn sorted_on_construction() {
        let t = Trace::new(vec![tj("a", 10.0, 1.0), tj("b", 5.0, 1.0)]);
        assert_eq!(t.jobs()[0].user, "b");
    }

    #[test]
    fn shares_sum_to_one() {
        let t = Trace::new(vec![
            tj("a", 0.0, 100.0),
            tj("a", 1.0, 100.0),
            tj("b", 2.0, 200.0),
        ]);
        let job_shares = t.job_share_by_user();
        let usage_shares = t.usage_share_by_user();
        assert!((job_shares.iter().map(|(_, s)| s).sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((usage_shares.iter().map(|(_, s)| s).sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(job_shares[0].0, "a"); // 2/3 of jobs
        assert_eq!(usage_shares[0].0, "a"); // 200 of 400 core-s ties... a=200, b=200
    }

    #[test]
    fn inter_arrivals_per_user() {
        let t = Trace::new(vec![
            tj("a", 0.0, 1.0),
            tj("b", 3.0, 1.0),
            tj("a", 10.0, 1.0),
        ]);
        assert_eq!(t.inter_arrivals(Some("a")), vec![10.0]);
        assert_eq!(t.inter_arrivals(None), vec![3.0, 7.0]);
    }

    #[test]
    fn time_scaling_preserves_structure() {
        let t = Trace::new(vec![tj("a", 10.0, 100.0), tj("b", 20.0, 50.0)]);
        let s = t.time_scaled(10.0);
        assert_eq!(s.len(), t.len());
        assert_eq!(s.jobs()[0].submit_s, 100.0);
        assert_eq!(s.jobs()[0].duration_s, 1000.0);
        // Internal relations preserved: ratios unchanged.
        let r0 = t.jobs()[1].submit_s / t.jobs()[0].submit_s;
        let r1 = s.jobs()[1].submit_s / s.jobs()[0].submit_s;
        assert!((r0 - r1).abs() < 1e-12);
        assert!((s.total_work() - 10.0 * t.total_work()).abs() < 1e-9);
    }

    #[test]
    fn merged_traces_sorted() {
        let a = Trace::new(vec![tj("a", 0.0, 1.0), tj("a", 100.0, 1.0)]);
        let b = Trace::new(vec![tj("b", 50.0, 1.0)]);
        let m = a.merged(&b);
        assert_eq!(m.len(), 3);
        assert_eq!(m.jobs()[1].user, "b");
    }

    #[test]
    fn empty_trace_safe() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.total_work(), 0.0);
        assert_eq!(t.last_submit(), 0.0);
        assert!(t.job_share_by_user().is_empty());
    }
}
