//! Synthetic trace generation (§IV-2/3 and §IV-A).
//!
//! Year-scale traces are sampled directly from the per-user models; test
//! traces compress "long term usage patterns to a shorter time span" —
//! the paper's tests are six hours long, contain 43,200 jobs, and carry "a
//! total load of 95% of the theoretical maximum of the combined
//! infrastructure".

use crate::models::{arrival_sampler, duration_sampler};
use crate::trace::{Trace, TraceJob};
use crate::users::{UserClass, YEAR_S};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for compressed test-trace generation.
#[derive(Debug, Clone)]
pub struct TestTraceConfig {
    /// Number of jobs in the trace (paper: 43,200).
    pub total_jobs: usize,
    /// Test length in seconds (paper: 6 hours).
    pub test_len_s: f64,
    /// Target load as a fraction of total capacity (paper: 0.95).
    pub load_target: f64,
    /// Total cores of the combined infrastructure (paper: 240 virtual
    /// hosts).
    pub capacity_cores: u32,
    /// Per-user job-count fractions; defaults to the trace's job shares.
    pub job_shares: Vec<(UserClass, f64)>,
    /// Per-user wall-clock usage-share targets. When set, each user's
    /// sampled durations are re-scaled so the trace's usage mix matches —
    /// the Table III duration *shapes* are preserved per user, but the mix
    /// matches the documented shares the paper's policies converge to
    /// (65.25/30.49/2.86/1.40 baseline; 47/38.5/12/2.5 bursty).
    pub usage_shares: Option<Vec<(UserClass, f64)>>,
    /// Shift of the U3 arrival distribution center as a fraction of the test
    /// length (the bursty test moves the burst "to start after one third of
    /// the test run"); `None` keeps the original (early) position.
    pub u3_burst_at: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TestTraceConfig {
    fn default() -> Self {
        Self {
            total_jobs: 43_200,
            test_len_s: 6.0 * 3600.0,
            load_target: 0.95,
            capacity_cores: 240,
            job_shares: UserClass::ALL.iter().map(|&c| (c, c.job_share())).collect(),
            usage_shares: Some(
                UserClass::ALL
                    .iter()
                    .map(|&c| (c, c.usage_share()))
                    .collect(),
            ),
            u3_burst_at: None,
            seed: 42,
        }
    }
}

impl TestTraceConfig {
    /// The §IV-A-5 bursty configuration: U3's job share raised to 45.5% (at
    /// U65's expense) and its burst shifted to T/3.
    pub fn bursty(seed: u64) -> Self {
        Self {
            job_shares: crate::users::bursty_job_shares(),
            usage_shares: Some(crate::users::bursty_usage_shares()),
            u3_burst_at: Some(1.0 / 3.0),
            seed,
            ..Default::default()
        }
    }
}

/// Sample a full-year synthetic trace with `total_jobs` jobs split by the
/// historical job shares.
pub fn synthetic_year(total_jobs: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut jobs = Vec::with_capacity(total_jobs);
    for user in UserClass::ALL {
        let n = (total_jobs as f64 * user.job_share()).round() as usize;
        let arrivals = arrival_sampler(user);
        let durations = duration_sampler(user);
        for _ in 0..n {
            jobs.push(TraceJob {
                user: user.name().to_string(),
                submit_s: arrivals.sample(&mut rng).clamp(0.0, YEAR_S),
                duration_s: durations.sample(&mut rng),
                cores: 1,
            });
        }
    }
    Trace::new(jobs)
}

/// Generate a compressed test trace per the configuration: arrivals are
/// sampled from the year models and mapped onto `[0, test_len_s]`; durations
/// are sampled from the duration models and globally re-scaled so the total
/// work equals `load_target × capacity × test_len` (the paper's "higher
/// scaling factor" mechanism that shifts relative usage shares when the job
/// mix changes, §IV-A-5).
pub fn test_trace(config: &TestTraceConfig) -> Trace {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut jobs: Vec<TraceJob> = Vec::with_capacity(config.total_jobs);
    let share_total: f64 = config.job_shares.iter().map(|(_, s)| s).sum();
    for &(user, share) in &config.job_shares {
        let n = (config.total_jobs as f64 * share / share_total).round() as usize;
        let arrivals = arrival_sampler(user);
        let durations = duration_sampler(user);
        for _ in 0..n {
            let year_t = arrivals.sample(&mut rng).clamp(0.0, YEAR_S);
            let mut frac = year_t / YEAR_S;
            if user == UserClass::U3 {
                if let Some(burst_at) = config.u3_burst_at {
                    // Re-center the U3 burst: the year model centers its
                    // burst at day ~60 (fraction ≈ 0.164); shift so that
                    // center maps to `burst_at`, wrapping within the run.
                    let original_center = 60.0 * crate::users::DAY_S / YEAR_S;
                    frac = (frac - original_center + burst_at).rem_euclid(1.0);
                }
            }
            jobs.push(TraceJob {
                user: user.name().to_string(),
                submit_s: frac * config.test_len_s,
                duration_s: durations.sample(&mut rng),
                cores: 1,
            });
        }
    }
    // Usage-mix targeting: re-scale each user's durations so the per-user
    // share of total work matches the configured usage shares.
    if let Some(shares) = &config.usage_shares {
        let mut work_by_user: std::collections::BTreeMap<&str, f64> = Default::default();
        for j in &jobs {
            *work_by_user.entry(j.user.as_str()).or_default() += j.duration_s * j.cores as f64;
        }
        let total: f64 = work_by_user.values().sum();
        let share_sum: f64 = shares.iter().map(|(_, s)| s).sum();
        let factors: std::collections::BTreeMap<&str, f64> = shares
            .iter()
            .filter_map(|(u, s)| {
                let w = work_by_user.get(u.name()).copied().unwrap_or(0.0);
                (w > 0.0).then(|| (u.name(), (s / share_sum) * total / w))
            })
            .collect();
        for j in &mut jobs {
            if let Some(f) = factors.get(j.user.as_str()) {
                j.duration_s *= f;
            }
        }
    }
    // Load targeting: scale durations so total work hits the target.
    let raw_work: f64 = jobs.iter().map(|j| j.duration_s * j.cores as f64).sum();
    let target_work = config.load_target * config.capacity_cores as f64 * config.test_len_s;
    let scale = if raw_work > 0.0 {
        target_work / raw_work
    } else {
        1.0
    };
    for j in &mut jobs {
        j.duration_s *= scale;
    }
    Trace::new(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn year_trace_has_requested_mix() {
        let t = synthetic_year(10_000, 1);
        assert!((t.len() as f64 - 10_000.0).abs() < 10.0);
        let shares = t.job_share_by_user();
        assert_eq!(shares[0].0, "U65");
        assert!((shares[0].1 - 0.81).abs() < 0.02, "{:?}", shares);
        // All within the year.
        for j in t.jobs() {
            assert!((0.0..=YEAR_S).contains(&j.submit_s));
        }
    }

    #[test]
    fn test_trace_matches_paper_baseline() {
        let cfg = TestTraceConfig {
            total_jobs: 5000,
            ..Default::default()
        };
        let t = test_trace(&cfg);
        assert!((t.len() as i64 - 5000).abs() < 10);
        // Load targeting: total work ≈ 95% of capacity × 6 h.
        let target = 0.95 * 240.0 * 6.0 * 3600.0;
        assert!((t.total_work() / target - 1.0).abs() < 1e-9);
        // All submissions inside the test window.
        for j in t.jobs() {
            assert!((0.0..=cfg.test_len_s).contains(&j.submit_s));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = TestTraceConfig {
            total_jobs: 1000,
            ..Default::default()
        };
        assert_eq!(test_trace(&cfg), test_trace(&cfg));
        let cfg2 = TestTraceConfig {
            seed: 7,
            ..cfg.clone()
        };
        assert_ne!(test_trace(&cfg), test_trace(&cfg2));
    }

    #[test]
    fn bursty_trace_shifts_u3() {
        let base = test_trace(&TestTraceConfig {
            total_jobs: 20_000,
            ..Default::default()
        });
        let bursty = test_trace(&TestTraceConfig {
            total_jobs: 20_000,
            ..TestTraceConfig::bursty(42)
        });
        let median = |xs: &[f64]| {
            let mut v = xs.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let base_u3 = median(&base.submits(Some("U3")));
        let bursty_u3 = median(&bursty.submits(Some("U3")));
        // Original burst is early; shifted burst centers near T/3.
        assert!(bursty_u3 > base_u3, "{bursty_u3} !> {base_u3}");
        let frac = bursty_u3 / (6.0 * 3600.0);
        assert!((0.2..0.55).contains(&frac), "burst median at {frac}");
    }

    #[test]
    fn bursty_usage_shares_shift_as_paper_describes() {
        // §IV-A-5: "the relative usage share of U30 and U_oth increase in
        // this scenario, even though their relative job share stays
        // constant" — because U3's short jobs shrink raw work and the load
        // scaling factor grows.
        let base = test_trace(&TestTraceConfig {
            total_jobs: 40_000,
            seed: 3,
            ..Default::default()
        });
        let bursty = test_trace(&TestTraceConfig {
            total_jobs: 40_000,
            ..TestTraceConfig::bursty(3)
        });
        let share = |t: &Trace, u: &str| {
            t.usage_share_by_user()
                .into_iter()
                .find(|(n, _)| n == u)
                .map(|(_, s)| s)
                .unwrap_or(0.0)
        };
        assert!(share(&bursty, "U30") > share(&base, "U30"));
        assert!(share(&bursty, "U65") < share(&base, "U65"));
        // Targets from the paper: bursty U65 = 47%, U30 = 38.5%.
        assert!(
            (share(&bursty, "U30") - 0.385).abs() < 0.01,
            "{}",
            share(&bursty, "U30")
        );
        assert!(
            (share(&bursty, "U65") - 0.47).abs() < 0.01,
            "{}",
            share(&bursty, "U65")
        );
        // Baseline matches the historical mix.
        assert!(
            (share(&base, "U65") - 0.6525).abs() < 0.01,
            "{}",
            share(&base, "U65")
        );
    }
}
