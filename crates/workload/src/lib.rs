//! # aequus-workload
//!
//! Workload modeling for the Aequus evaluation (§IV-1..3): the statistical
//! models fitted to the 2012 Swedish national grid trace, and synthetic
//! trace generation from those models.
//!
//! * [`trace`] — the trace representation with per-user analysis helpers
//!   and the paper's time-scaling transformation.
//! * [`users`] — the four user classes (U65/U30/U3/Uoth) and their
//!   published job/usage shares.
//! * [`models`] — the Table II/III fitted distributions (GEV phases, Burr,
//!   Birnbaum–Saunders, Weibull), the Eq. (1) composite for U65, and
//!   range-rescaled samplers.
//! * [`generate`] — year traces and compressed 6-hour test traces with 95%
//!   load targeting, plus the §IV-A-5 bursty variant.
//! * [`clean`] — the admin/zero-duration filtering step and noise injection
//!   to exercise it.
//! * [`characterize`] — re-derivation of Tables II and III (median, BIC
//!   model selection over 18 families, KS) and the autocorrelation
//!   periodicity scan.
//! * [`swf`] — Standard Workload Format import/export, so Parallel
//!   Workloads Archive traces can drive the simulator directly.

#![warn(missing_docs)]

pub mod characterize;
pub mod clean;
pub mod generate;
pub mod models;
pub mod swf;
pub mod trace;
pub mod users;

pub use generate::{synthetic_year, test_trace, TestTraceConfig};
pub use trace::{Trace, TraceJob};
pub use users::UserClass;
