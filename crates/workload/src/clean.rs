//! Trace cleaning (§IV-1): "jobs that are submitted and managed by system
//! administrators or automated monitoring systems are not representative of
//! the actual workload and are removed prior to modeling. In addition, jobs
//! with zero duration (most likely due to being canceled or failed) are
//! considered outliers and are also removed. In total, about 15% of the
//! total number of jobs, representing 1.5% of the total usage of the system,
//! were removed prior to modeling."

use crate::trace::{Trace, TraceJob};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// User names treated as administrative/monitoring identities.
pub const ADMIN_USERS: [&str; 3] = ["root", "monitor", "nagios"];

/// Statistics of a cleaning pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CleanStats {
    /// Jobs before cleaning.
    pub jobs_before: usize,
    /// Jobs after cleaning.
    pub jobs_after: usize,
    /// Fraction of jobs removed.
    pub job_fraction_removed: f64,
    /// Fraction of total usage removed.
    pub usage_fraction_removed: f64,
}

/// Remove admin/monitoring jobs and zero-duration jobs, reporting what was
/// dropped.
pub fn clean(trace: &Trace) -> (Trace, CleanStats) {
    let total_jobs = trace.len();
    let total_work = trace.total_work().max(f64::MIN_POSITIVE);
    let kept: Vec<TraceJob> = trace
        .jobs()
        .iter()
        .filter(|j| j.duration_s > 0.0 && !ADMIN_USERS.contains(&j.user.as_str()))
        .cloned()
        .collect();
    let cleaned = Trace::new(kept);
    let stats = CleanStats {
        jobs_before: total_jobs,
        jobs_after: cleaned.len(),
        job_fraction_removed: if total_jobs == 0 {
            0.0
        } else {
            1.0 - cleaned.len() as f64 / total_jobs as f64
        },
        usage_fraction_removed: 1.0 - cleaned.total_work() / total_work,
    };
    (cleaned, stats)
}

/// Inject realistic noise into a clean trace: admin/monitoring jobs (short,
/// frequent) and zero-duration cancelled jobs — so the cleaning step has
/// something representative to remove. `admin_job_frac` and
/// `zero_duration_frac` are fractions of the *final* job count (the paper's
/// combined figure is ~15% of jobs carrying ~1.5% of usage).
pub fn with_noise(trace: &Trace, admin_job_frac: f64, zero_duration_frac: f64, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = trace.len();
    let span = trace.last_submit().max(1.0);
    let mean_dur = if n > 0 {
        trace.total_work() / n as f64
    } else {
        60.0
    };
    let mut jobs: Vec<TraceJob> = trace.jobs().to_vec();
    // Denominator: final count = n / (1 − fracs).
    let denom = (1.0 - admin_job_frac - zero_duration_frac).max(0.05);
    let final_count = n as f64 / denom;
    let n_admin = (final_count * admin_job_frac).round() as usize;
    let n_zero = (final_count * zero_duration_frac).round() as usize;
    for i in 0..n_admin {
        jobs.push(TraceJob {
            user: ADMIN_USERS[i % ADMIN_USERS.len()].to_string(),
            submit_s: rng.gen::<f64>() * span,
            // Admin jobs are short: ~1% of a typical job each, so the whole
            // admin population carries roughly 1–2% of total usage.
            duration_s: mean_dur * 0.01 * (0.5 + rng.gen::<f64>()),
            cores: 1,
        });
    }
    for _ in 0..n_zero {
        let user = &trace.jobs()[rng.gen_range(0..n.max(1))].user;
        jobs.push(TraceJob {
            user: user.clone(),
            submit_s: rng.gen::<f64>() * span,
            duration_s: 0.0,
            cores: 1,
        });
    }
    Trace::new(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_trace(n: usize) -> Trace {
        Trace::new(
            (0..n)
                .map(|i| TraceJob {
                    user: "U65".to_string(),
                    submit_s: i as f64 * 10.0,
                    duration_s: 1000.0,
                    cores: 1,
                })
                .collect(),
        )
    }

    #[test]
    fn clean_removes_only_noise() {
        let t = base_trace(1000);
        let noisy = with_noise(&t, 0.10, 0.05, 1);
        assert!(noisy.len() > t.len());
        let (cleaned, stats) = clean(&noisy);
        assert_eq!(cleaned.len(), 1000);
        assert!(cleaned
            .jobs()
            .iter()
            .all(|j| j.duration_s > 0.0 && !ADMIN_USERS.contains(&j.user.as_str())));
        assert_eq!(stats.jobs_before, noisy.len());
        assert_eq!(stats.jobs_after, 1000);
    }

    #[test]
    fn paper_proportions_reproduced() {
        // ~15% of jobs removed carrying ~1.5% of usage.
        let t = base_trace(20_000);
        let noisy = with_noise(&t, 0.10, 0.05, 2);
        let (_, stats) = clean(&noisy);
        assert!(
            (stats.job_fraction_removed - 0.15).abs() < 0.02,
            "jobs removed: {}",
            stats.job_fraction_removed
        );
        assert!(
            stats.usage_fraction_removed < 0.03,
            "usage removed: {}",
            stats.usage_fraction_removed
        );
        assert!(stats.usage_fraction_removed > 0.0);
    }

    #[test]
    fn clean_of_clean_is_identity() {
        let t = base_trace(100);
        let (c1, s1) = clean(&t);
        assert_eq!(c1.len(), t.len());
        assert_eq!(s1.job_fraction_removed, 0.0);
    }

    #[test]
    fn empty_trace() {
        let (c, s) = clean(&Trace::default());
        assert!(c.is_empty());
        assert_eq!(s.job_fraction_removed, 0.0);
    }
}
