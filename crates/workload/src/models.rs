//! The paper's fitted statistical models (Tables II and III).
//!
//! **Job arrival** is modeled as a distribution over *absolute arrival
//! times* within the year — "the inverse CDF is used to model arrival time
//! as a function of probability, and random values in the \[0,1\] range are
//! used to sample job arrival times" (§IV-2) — with the uniform input
//! re-scaled so every sample lands inside the calendar year.
//!
//! **Parameter provenance.** Distribution *families* and *shape parameters*
//! are taken verbatim from Tables II and III (GEV shapes k, Burr c/k, BS γ,
//! Weibull k). The printed location/scale columns are internally
//! inconsistent in the published table (every phase shares μ = 7.35e4 and
//! the σ values are ~20–56, far too narrow to cover a 3.15e7-second year),
//! so locations are placed at the documented structural positions — U65's
//! four quarterly experiment phases ("a pattern in job arrival about every
//! three months"), U3's early burst — with scales interpreted in *days* and
//! converted to seconds. EXPERIMENTS.md records this substitution; the
//! refit harness (Table II/III reproduction) measures the parameters back
//! from the generated traces.

use crate::users::{UserClass, DAY_S, YEAR_S};
use aequus_stats::dist::{AnyDist, BirnbaumSaunders, Burr, Gev, Mixture, Weibull};
#[cfg(test)]
use aequus_stats::ContinuousDistribution;
use aequus_stats::RangeRescaled;

/// GEV shape parameters of the four U65 arrival phases (Table II).
pub const U65_PHASE_SHAPES: [f64; 4] = [-0.386, -0.371, -0.457, -0.301];

/// GEV scales of the four U65 arrival phases, in days (Table II σ values).
pub const U65_PHASE_SCALES_DAYS: [f64; 4] = [19.5, 30.6, 30.8, 21.4];

/// Per-phase usage weights of Eq. (1): `phase_usage / total_usage`. The
/// paper does not print the numeric weights; these follow Figure 5's phase
/// densities (an early-heavy year).
pub const U65_PHASE_WEIGHTS: [f64; 4] = [0.30, 0.25, 0.25, 0.20];

/// Phase boundaries of the U65 model, in seconds (quarterly cycles,
/// "each cycle... lasting about three months").
pub fn u65_phase_bounds() -> [(f64, f64); 4] {
    let q = YEAR_S / 4.0;
    [
        (0.0, q),
        (q, 2.0 * q),
        (2.0 * q, 3.0 * q),
        (3.0 * q, YEAR_S),
    ]
}

/// The per-phase GEV arrival model of U65: phase `n` (0-based).
pub fn u65_phase_model(n: usize) -> Gev {
    assert!(n < 4, "U65 has four phases");
    let (lo, hi) = u65_phase_bounds()[n];
    let center = 0.5 * (lo + hi);
    Gev::new(
        U65_PHASE_SHAPES[n],
        U65_PHASE_SCALES_DAYS[n] * DAY_S,
        center,
    )
    .expect("valid phase parameters")
}

/// Equation (1): the composite U65 arrival PDF — each phase's density scaled
/// by its usage fraction.
pub fn u65_composite_arrival() -> Mixture {
    Mixture::new(
        (0..4)
            .map(|n| (U65_PHASE_WEIGHTS[n], AnyDist::from(u65_phase_model(n))))
            .collect(),
    )
    .expect("non-empty mixture")
}

/// The arrival-time model of a user class over the year (Table II families).
pub fn arrival_model(user: UserClass) -> AnyDist {
    match user {
        UserClass::U65 => AnyDist::from(u65_composite_arrival()),
        // Burr arrival for U30 (Table II family). The printed scale
        // (α = 7.4e4 s ≈ 20 h) would concentrate the whole year's arrivals
        // in the first days, contradicting the paper's own test narrative
        // ("at the end of the tests mostly jobs by U30 are available",
        // §IV-A-3); with Table II's shape k = 0.08 kept, the scale is set to
        // 0.45 year and c = 1.2 so arrivals cover the whole year with a mild
        // early lean (≈42% in the first third, ≈25% after day 243) — U30 is
        // available both early (balance windows) and late (Fig. 12's ending).
        UserClass::U30 => AnyDist::from(Burr::new(1.42e7, 1.2, 0.08).expect("valid")),
        // U3: bursty arrivals, early burst in the original trace; positive
        // GEV shape = heavy right tail after the burst.
        UserClass::U3 => AnyDist::from(Gev::new(0.195, 29.1 * DAY_S, 60.0 * DAY_S).expect("valid")),
        // U_oth: diffuse background arrivals across the year.
        UserClass::Uoth => {
            AnyDist::from(Gev::new(0.148, 56.0 * DAY_S, 182.0 * DAY_S).expect("valid"))
        }
    }
}

/// The re-scaled sampler producing arrival times strictly inside the year
/// (the paper's "effective range" construction; U65's printed range is
/// [7.451e−3, 9.946e−1]).
pub fn arrival_sampler(user: UserClass) -> RangeRescaled<AnyDist> {
    // The same construction as the paper's printed U65 range
    // [7.451e-3, 9.946e-1]: the u-range is derived from the CDF at the year
    // boundaries so every sample lands inside the calendar year.
    RangeRescaled::for_x_range(arrival_model(user), 0.0, YEAR_S).expect("year range")
}

/// The job-duration model of a user class (Table III, parameters in
/// seconds).
pub fn duration_model(user: UserClass) -> AnyDist {
    match user {
        // BS(β = 1.76e4, γ = 3.53): median β ≈ 4.9 h.
        UserClass::U65 => AnyDist::from(BirnbaumSaunders::new(1.76e4, 3.53).expect("valid")),
        // Weibull(λ = 5.49e4, k = 0.637): "U30 exhibits a larger tail and
        // generally exhibits larger job sizes".
        UserClass::U30 => AnyDist::from(Weibull::new(5.49e4, 0.637).expect("valid")),
        // Burr(α = 2.07, c = 11.0, k = 0.02): very short, bursty jobs
        // (median ≈ 48 s) — "the job durations of U3 are considerably
        // shorter than those of U65".
        UserClass::U3 => AnyDist::from(Burr::new(2.07, 11.0, 0.02).expect("valid")),
        // BS(β = 3.02e4, γ = 7.91).
        UserClass::Uoth => AnyDist::from(BirnbaumSaunders::new(3.02e4, 7.91).expect("valid")),
    }
}

/// Duration sampler bounded to sane wall-clock times (one second to the
/// paper's [0, 6e5]-second job-size focus window, Figure 7).
pub fn duration_sampler(user: UserClass) -> RangeRescaled<AnyDist> {
    RangeRescaled::for_x_range(duration_model(user), 1.0, 6.0e5).expect("duration range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn phase_models_centered_quarterly() {
        for n in 0..4 {
            let (lo, hi) = u65_phase_bounds()[n];
            let m = u65_phase_model(n);
            assert!(m.mu > lo && m.mu < hi, "phase {n} center inside bounds");
        }
    }

    #[test]
    fn composite_weights_follow_eq1() {
        let c = u65_composite_arrival();
        let total: f64 = U65_PHASE_WEIGHTS.iter().sum();
        for (i, (w, _)) in c.components().iter().enumerate() {
            assert!((w - U65_PHASE_WEIGHTS[i] / total).abs() < 1e-12);
        }
    }

    #[test]
    fn u65_arrivals_inside_year() {
        let s = arrival_sampler(UserClass::U65);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let t = s.sample(&mut rng);
            assert!((0.0..=YEAR_S).contains(&t), "{t}");
        }
    }

    #[test]
    fn all_arrival_samplers_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        for user in UserClass::ALL {
            let s = arrival_sampler(user);
            for _ in 0..500 {
                let t = s.sample(&mut rng);
                assert!(
                    (-1.0..=YEAR_S + 1.0).contains(&t),
                    "{user:?} sample {t} outside year"
                );
            }
        }
    }

    #[test]
    fn duration_medians_match_table3_families() {
        // Medians follow the printed distribution parameters.
        let u65 = duration_model(UserClass::U65);
        assert!((u65.icdf(0.5) / 1.76e4 - 1.0).abs() < 1e-6, "BS median = β");
        let u30 = duration_model(UserClass::U30);
        let expected = 5.49e4 * (2.0f64.ln()).powf(1.0 / 0.637);
        assert!((u30.icdf(0.5) / expected - 1.0).abs() < 1e-6);
        let u3 = duration_model(UserClass::U3);
        assert!(u3.icdf(0.5) < 100.0, "U3 jobs are short: {}", u3.icdf(0.5));
    }

    #[test]
    fn u3_jobs_much_shorter_than_u65() {
        let u3 = duration_model(UserClass::U3).icdf(0.5);
        let u65 = duration_model(UserClass::U65).icdf(0.5);
        assert!(u65 / u3 > 100.0, "u65 median {u65} vs u3 {u3}");
    }

    #[test]
    fn u30_generally_larger_job_sizes() {
        // Figure 7: U30 "generally exhibits larger job sizes" — its median
        // duration exceeds U65's (the BS γ=3.53 tail makes U65's *mean*
        // heavy, but the bulk of U65 jobs is shorter).
        let u30 = duration_model(UserClass::U30);
        let u65 = duration_model(UserClass::U65);
        assert!(u30.icdf(0.5) > u65.icdf(0.5));
    }

    #[test]
    fn durations_in_focus_window() {
        let mut rng = StdRng::seed_from_u64(4);
        for user in UserClass::ALL {
            let s = duration_sampler(user);
            for _ in 0..500 {
                let d = s.sample(&mut rng);
                assert!((1.0..=6.0e5 + 1.0).contains(&d), "{user:?}: {d}");
            }
        }
    }
}
