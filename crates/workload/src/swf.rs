//! Standard Workload Format (SWF) import/export.
//!
//! The paper builds its models from "a trace containing jobs run in 2012
//! across all national clusters". Real cluster traces are distributed in the
//! Parallel Workloads Archive's SWF: one line per job with 18
//! whitespace-separated fields, `;`-prefixed header comments. This module
//! reads SWF into [`Trace`] (so archive traces can drive the simulator
//! directly) and writes traces back out for interchange.
//!
//! Field usage (0-based): 1 = submit time, 3 = run time, 4 = allocated
//! processors, 11 = user id. Jobs with non-positive run time or processor
//! count are skipped on import (they would be removed by the cleaning step
//! anyway, §IV-1).

use crate::trace::{Trace, TraceJob};
use std::fmt::Write as _;

/// Errors raised by SWF parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwfError {
    /// A data line had fewer than the 18 standard fields.
    ShortLine {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        fields: usize,
    },
    /// A field failed to parse as a number.
    BadField {
        /// 1-based line number.
        line: usize,
        /// 0-based field index.
        field: usize,
    },
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfError::ShortLine { line, fields } => {
                write!(f, "line {line}: only {fields} fields (need 18)")
            }
            SwfError::BadField { line, field } => {
                write!(f, "line {line}: field {field} is not a number")
            }
        }
    }
}

impl std::error::Error for SwfError {}

/// Parse SWF text into a trace. Header comments (`;`) and blank lines are
/// skipped; jobs with non-positive run time or processor count are dropped
/// (cancelled/failed jobs, exactly what the §IV-1 cleaning removes).
pub fn parse_swf(text: &str) -> Result<Trace, SwfError> {
    let mut jobs = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 18 {
            return Err(SwfError::ShortLine {
                line: idx + 1,
                fields: fields.len(),
            });
        }
        let num = |i: usize| -> Result<f64, SwfError> {
            fields[i].parse::<f64>().map_err(|_| SwfError::BadField {
                line: idx + 1,
                field: i,
            })
        };
        let submit = num(1)?;
        let run_time = num(3)?;
        let procs = num(4)?;
        let user = num(11)? as i64;
        if run_time <= 0.0 || procs <= 0.0 {
            continue; // cancelled/failed — the cleaning step's removals
        }
        jobs.push(TraceJob {
            user: format!("user{user}"),
            submit_s: submit.max(0.0),
            duration_s: run_time,
            cores: procs.max(1.0) as u32,
        });
    }
    Ok(Trace::new(jobs))
}

/// Serialize a trace to SWF text (fields we do not model are written as the
/// SWF "unknown" value −1). User names are hashed to stable numeric ids.
pub fn to_swf(trace: &Trace) -> String {
    let mut user_ids: std::collections::BTreeMap<&str, usize> = Default::default();
    let mut out = String::new();
    out.push_str("; SWF written by aequus-workload\n");
    out.push_str("; UnixStartTime: 0\n");
    for (i, j) in trace.jobs().iter().enumerate() {
        let next_id = user_ids.len() + 1;
        let uid = *user_ids.entry(j.user.as_str()).or_insert(next_id);
        // job submit wait run procs cpu mem reqprocs reqtime reqmem status
        // user group exe queue partition preceding think
        writeln!(
            out,
            "{} {} -1 {} {} -1 -1 {} {} -1 1 {} -1 -1 -1 -1 -1 -1",
            i + 1,
            j.submit_s as i64,
            j.duration_s as i64,
            j.cores,
            j.cores,
            j.duration_s as i64,
            uid,
        )
        .expect("write to String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Computer: Test Cluster
; MaxJobs: 3
1 100 5 3600 1 -1 -1 1 3600 -1 1 7 -1 -1 -1 -1 -1 -1
2 200 0 1800 4 -1 -1 4 1800 -1 1 8 -1 -1 -1 -1 -1 -1
3 300 9 0 1 -1 -1 1 100 -1 0 7 -1 -1 -1 -1 -1 -1
";

    #[test]
    fn parses_sample() {
        let t = parse_swf(SAMPLE).unwrap();
        // Job 3 has zero run time → dropped.
        assert_eq!(t.len(), 2);
        assert_eq!(t.jobs()[0].user, "user7");
        assert_eq!(t.jobs()[0].submit_s, 100.0);
        assert_eq!(t.jobs()[0].duration_s, 3600.0);
        assert_eq!(t.jobs()[1].cores, 4);
    }

    #[test]
    fn short_line_rejected() {
        let err = parse_swf("1 2 3\n").unwrap_err();
        assert_eq!(err, SwfError::ShortLine { line: 1, fields: 3 });
    }

    #[test]
    fn bad_field_rejected() {
        let bad = "1 abc 5 3600 1 -1 -1 1 3600 -1 1 7 -1 -1 -1 -1 -1 -1\n";
        let err = parse_swf(bad).unwrap_err();
        assert_eq!(err, SwfError::BadField { line: 1, field: 1 });
    }

    #[test]
    fn roundtrip_preserves_jobs() {
        let t = parse_swf(SAMPLE).unwrap();
        let swf = to_swf(&t);
        let back = parse_swf(&swf).unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in t.jobs().iter().zip(back.jobs()) {
            assert_eq!(a.submit_s, b.submit_s);
            assert_eq!(a.duration_s, b.duration_s);
            assert_eq!(a.cores, b.cores);
        }
        // Same submitter structure (names re-keyed to stable ids).
        assert_eq!(t.job_share_by_user().len(), back.job_share_by_user().len());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let t = parse_swf("; a comment\n\n;another\n").unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn generated_trace_roundtrips() {
        let t = crate::generate::test_trace(&crate::generate::TestTraceConfig {
            total_jobs: 200,
            ..Default::default()
        });
        let back = parse_swf(&to_swf(&t)).unwrap();
        assert_eq!(back.len(), t.len());
        // SWF stores whole seconds; totals agree to rounding.
        assert!((back.total_work() / t.total_work() - 1.0).abs() < 0.01);
    }
}
