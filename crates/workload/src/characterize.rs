//! Workload characterization: re-derive the paper's Tables II and III from a
//! (synthetic or real) trace — median values in whole seconds, the best
//! BIC-selected distribution out of the 18 candidate families, and the
//! Kolmogorov–Smirnov goodness-of-fit value.

use crate::trace::Trace;
use crate::users::{UserClass, YEAR_S};
use aequus_stats::acf::dominant_period;
use aequus_stats::dist::describe;
use aequus_stats::gof::anderson_darling;
use aequus_stats::ks::ks_statistic;
use aequus_stats::select::{select_best, FitResult};
use aequus_stats::summary::{median, to_whole_seconds};
use aequus_stats::ContinuousDistribution;

/// One row of a Table II / Table III reproduction.
#[derive(Debug, Clone)]
pub struct FitRow {
    /// Data-set label (e.g. "U65 (p1)" or "U30").
    pub label: String,
    /// Median of the raw data, rounded to whole seconds as in the paper.
    pub median_s: u64,
    /// Human-readable fitted distribution with parameters.
    pub fitted: String,
    /// KS statistic of the fit.
    pub ks: f64,
    /// Anderson–Darling statistic of the fit (tail-sensitive complement).
    pub ad: f64,
    /// Number of samples the fit used.
    pub n: usize,
}

/// Cap on per-fit sample count: fitting is O(n · iterations); the paper's
/// statistics are stable well below this.
const FIT_SAMPLE_CAP: usize = 20_000;

fn subsample(data: &[f64]) -> Vec<f64> {
    if data.len() <= FIT_SAMPLE_CAP {
        return data.to_vec();
    }
    // Deterministic stride subsample preserving order statistics.
    let stride = data.len() as f64 / FIT_SAMPLE_CAP as f64;
    (0..FIT_SAMPLE_CAP)
        .map(|i| data[(i as f64 * stride) as usize])
        .collect()
}

fn fit_row(label: &str, data: &[f64]) -> Option<FitRow> {
    if data.len() < 10 {
        return None;
    }
    let med = median(data)?;
    let sample = subsample(data);
    let best: FitResult = select_best(&sample)?;
    let ad = anderson_darling(&sample, |x| best.dist.cdf(x));
    Some(FitRow {
        label: label.to_string(),
        median_s: to_whole_seconds(med),
        fitted: describe(&best.dist),
        ks: best.ks,
        ad,
        n: sample.len(),
    })
}

/// Reproduce Table II: per-user median inter-arrival times and best-fit
/// *arrival-time* distributions. Following the paper, U65 is split into its
/// four quarterly phases (rows "U65 (p1..p4)") plus the composite row, and
/// the remaining users get single fits.
pub fn table2_arrival(trace: &Trace) -> Vec<FitRow> {
    let mut rows = Vec::new();
    // U65: per-phase fits of arrival times.
    let u65_arrivals = trace.submits(Some(UserClass::U65.name()));
    let horizon = trace.last_submit().max(1.0);
    // Scale phase bounds to the trace horizon (works for compressed traces).
    let q = horizon / 4.0;
    for phase in 0..4 {
        let (lo, hi) = (phase as f64 * q, (phase as f64 + 1.0) * q);
        let phase_arrivals: Vec<f64> = u65_arrivals
            .iter()
            .copied()
            .filter(|&t| t >= lo && t < hi)
            .collect();
        let inter: Vec<f64> = phase_arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        let med = median(&inter).unwrap_or(0.0);
        if let Some(best) = select_best(&subsample(&phase_arrivals)) {
            let ad = anderson_darling(&subsample(&phase_arrivals), |x| best.dist.cdf(x));
            rows.push(FitRow {
                label: format!("U65 (p{})", phase + 1),
                median_s: to_whole_seconds(med),
                fitted: describe(&best.dist),
                ks: best.ks,
                ad,
                n: phase_arrivals.len().min(FIT_SAMPLE_CAP),
            });
        }
    }
    // U65 composite row: the Eq. (1) mixture against all U65 arrivals.
    {
        let composite = crate::models::u65_composite_arrival();
        let scaled: Vec<f64> = u65_arrivals.iter().map(|&t| t / horizon * YEAR_S).collect();
        let inter: Vec<f64> = u65_arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        let ks = ks_statistic(&subsample(&scaled), |x| composite.cdf(x));
        let ad = anderson_darling(&subsample(&scaled), |x| composite.cdf(x));
        rows.push(FitRow {
            label: "U65 (ps)".to_string(),
            median_s: to_whole_seconds(median(&inter).unwrap_or(0.0)),
            fitted: "(see Equation 1)".to_string(),
            ks,
            ad,
            n: scaled.len().min(FIT_SAMPLE_CAP),
        });
    }
    for user in [UserClass::U30, UserClass::U3, UserClass::Uoth] {
        let arrivals = trace.submits(Some(user.name()));
        let inter: Vec<f64> = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        let med = median(&inter).unwrap_or(0.0);
        if let Some(best) = select_best(&subsample(&arrivals)) {
            let ad = anderson_darling(&subsample(&arrivals), |x| best.dist.cdf(x));
            rows.push(FitRow {
                label: user.name().to_string(),
                median_s: to_whole_seconds(med),
                fitted: describe(&best.dist),
                ks: best.ks,
                ad,
                n: arrivals.len().min(FIT_SAMPLE_CAP),
            });
        }
    }
    rows
}

/// Reproduce Table III: per-user median job durations and best-fit duration
/// distributions.
pub fn table3_duration(trace: &Trace) -> Vec<FitRow> {
    UserClass::ALL
        .iter()
        .filter_map(|user| {
            let durations = trace.durations(Some(user.name()));
            fit_row(user.name(), &durations)
        })
        .collect()
}

/// The periodicity scan of §IV-2: bin a user's arrivals per day and search
/// the autocorrelation for daily/weekly/monthly patterns. Returns the
/// dominant lag in days and its correlation, if significant.
pub fn periodicity_scan(trace: &Trace, user: Option<&str>, bin_s: f64) -> Option<(usize, f64)> {
    let submits = trace.submits(user);
    if submits.is_empty() {
        return None;
    }
    let horizon = trace.last_submit().max(bin_s);
    let bins = (horizon / bin_s).ceil() as usize + 1;
    let mut counts = vec![0.0f64; bins];
    for t in submits {
        counts[(t / bin_s) as usize] += 1.0;
    }
    dominant_period(&counts, bins / 2)
}

/// Render rows as an aligned text table (the shape of Tables II/III).
pub fn render_rows(title: &str, rows: &[FitRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:<60} {:>6} {:>9} {:>8}\n",
        "User", "Median(s)", "Fitted Distribution", "KS", "AD", "n"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>10} {:<60} {:>6.2} {:>9.2} {:>8}\n",
            r.label, r.median_s, r.fitted, r.ks, r.ad, r.n
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::synthetic_year;

    #[test]
    fn table3_recovers_duration_families() {
        let trace = synthetic_year(30_000, 7);
        let rows = table3_duration(&trace);
        assert_eq!(rows.len(), 4);
        let by_label = |l: &str| rows.iter().find(|r| r.label == l).unwrap();
        // U65 durations came from a Birnbaum–Saunders with β=1.76e4; median
        // must be near β (range-rescaling trims the extreme tail slightly).
        let u65 = by_label("U65");
        assert!(
            (u65.median_s as f64 / 1.76e4 - 1.0).abs() < 0.25,
            "median {}",
            u65.median_s
        );
        // U3 durations are short.
        assert!(by_label("U3").median_s < 200, "{:?}", by_label("U3"));
        // Fits are decent.
        for r in &rows {
            assert!(r.ks < 0.30, "{}: ks={}", r.label, r.ks);
        }
    }

    #[test]
    fn table2_has_paper_rows() {
        let trace = synthetic_year(20_000, 8);
        let rows = table2_arrival(&trace);
        let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
        assert!(labels.contains(&"U65 (p1)"), "{labels:?}");
        assert!(labels.contains(&"U65 (ps)"));
        assert!(labels.contains(&"U30"));
        assert!(labels.contains(&"U3"));
        assert!(labels.contains(&"Uoth"));
        // The composite fit should be reasonable (the paper reports 0.02).
        let ps = rows.iter().find(|r| r.label == "U65 (ps)").unwrap();
        assert!(ps.ks < 0.2, "composite ks {}", ps.ks);
    }

    #[test]
    fn periodicity_found_in_periodic_trace() {
        use crate::trace::{Trace, TraceJob};
        // One job burst every 7 days for a year.
        let jobs: Vec<TraceJob> = (0..52)
            .flat_map(|w| {
                (0..100).map(move |i| TraceJob {
                    user: "U65".to_string(),
                    submit_s: w as f64 * 7.0 * 86400.0 + i as f64,
                    duration_s: 10.0,
                    cores: 1,
                })
            })
            .collect();
        let t = Trace::new(jobs);
        let (lag, r) = periodicity_scan(&t, Some("U65"), 86400.0).unwrap();
        assert_eq!(lag, 7, "weekly period, r={r}");
    }

    #[test]
    fn render_is_aligned() {
        let rows = vec![FitRow {
            label: "U30".to_string(),
            median_s: 1,
            fitted: "Burr(...)".to_string(),
            ks: 0.08,
            ad: 1.2,
            n: 100,
        }];
        let s = render_rows("Table II", &rows);
        assert!(s.contains("Median(s)"));
        assert!(s.contains("U30"));
    }
}
