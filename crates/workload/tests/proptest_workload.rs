//! Property-based tests of workload generation: share targeting, time
//! scaling, cleaning, and statistical sanity of the generated traces.

use aequus_workload::clean::{clean, with_noise};
use aequus_workload::generate::{synthetic_year, test_trace, TestTraceConfig};
use aequus_workload::trace::{Trace, TraceJob};
use aequus_workload::users::{UserClass, YEAR_S};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn test_trace_hits_load_target(
        jobs in 500usize..4000,
        load in 0.3..1.2f64,
        cores in 50u32..500,
        seed in 0u64..1000,
    ) {
        let cfg = TestTraceConfig {
            total_jobs: jobs,
            load_target: load,
            capacity_cores: cores,
            seed,
            ..Default::default()
        };
        let t = test_trace(&cfg);
        let target = load * cores as f64 * cfg.test_len_s;
        prop_assert!((t.total_work() / target - 1.0).abs() < 1e-9);
        prop_assert!((t.len() as i64 - jobs as i64).abs() <= 4, "{} vs {jobs}", t.len());
        for j in t.jobs() {
            prop_assert!(j.submit_s >= 0.0 && j.submit_s <= cfg.test_len_s);
            prop_assert!(j.duration_s > 0.0);
        }
    }

    #[test]
    fn usage_share_targeting_is_exact(seed in 0u64..500) {
        let t = test_trace(&TestTraceConfig {
            total_jobs: 4000,
            seed,
            ..Default::default()
        });
        for (user, share) in t.usage_share_by_user() {
            let expected = UserClass::parse(&user).unwrap().usage_share();
            prop_assert!(
                (share - expected).abs() < 5e-3,
                "{user}: {share} vs {expected}"
            );
        }
    }

    #[test]
    fn time_scaling_preserves_relations(factor in 0.1..20.0f64, seed in 0u64..100) {
        let t = test_trace(&TestTraceConfig {
            total_jobs: 500,
            seed,
            ..Default::default()
        });
        let s = t.time_scaled(factor);
        prop_assert_eq!(s.len(), t.len());
        prop_assert!((s.total_work() - factor * t.total_work()).abs()
            < 1e-6 * t.total_work());
        // Pairwise submit-gap ratios preserved.
        for (a, b) in t.jobs().iter().zip(s.jobs()) {
            prop_assert!((b.submit_s - a.submit_s * factor).abs() < 1e-6 * (1.0 + a.submit_s));
            prop_assert!((b.duration_s - a.duration_s * factor).abs() < 1e-6 * (1.0 + a.duration_s));
        }
    }

    #[test]
    fn clean_removes_exactly_the_noise(
        n in 100usize..1000,
        admin_frac in 0.01..0.2f64,
        zero_frac in 0.01..0.2f64,
        seed in 0u64..100,
    ) {
        let base = Trace::new(
            (0..n)
                .map(|i| TraceJob {
                    user: "U65".to_string(),
                    submit_s: i as f64,
                    duration_s: 100.0,
                    cores: 1,
                })
                .collect(),
        );
        let noisy = with_noise(&base, admin_frac, zero_frac, seed);
        let (cleaned, stats) = clean(&noisy);
        prop_assert_eq!(cleaned.len(), n, "exactly the original jobs survive");
        prop_assert!(stats.job_fraction_removed > 0.0);
        prop_assert!(stats.usage_fraction_removed >= 0.0);
        prop_assert!(stats.usage_fraction_removed < admin_frac + zero_frac,
            "noise carries less usage than its job share");
        // Cleaning is idempotent.
        let (again, s2) = clean(&cleaned);
        prop_assert_eq!(again.len(), cleaned.len());
        prop_assert_eq!(s2.job_fraction_removed, 0.0);
    }

    #[test]
    fn year_trace_statistics_sane(jobs in 2000usize..10_000, seed in 0u64..100) {
        let t = synthetic_year(jobs, seed);
        // All arrivals inside the year; all durations positive.
        for j in t.jobs() {
            prop_assert!((0.0..=YEAR_S).contains(&j.submit_s));
            prop_assert!(j.duration_s > 0.0);
            prop_assert_eq!(j.cores, 1, "bag-of-task: single processor");
        }
        // Job mix near the historical shares.
        for (user, share) in t.job_share_by_user() {
            let expected = UserClass::parse(&user).unwrap().job_share();
            prop_assert!((share - expected).abs() < 0.03, "{user}: {share}");
        }
        // U65 dominates jobs; U30's median duration above U65's.
        let med = |u: &str| {
            let mut d = t.durations(Some(u));
            d.sort_by(|a, b| a.partial_cmp(b).unwrap());
            d[d.len() / 2]
        };
        prop_assert!(med("U30") > med("U65"));
        prop_assert!(med("U3") < med("U65"));
    }

    #[test]
    fn merged_traces_sorted_and_complete(
        n1 in 1usize..100,
        n2 in 1usize..100,
        seed in 0u64..50,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mk = |n: usize, rng: &mut rand::rngs::StdRng| {
            Trace::new(
                (0..n)
                    .map(|_| TraceJob {
                        user: "U65".to_string(),
                        submit_s: rng.gen::<f64>() * 1000.0,
                        duration_s: 1.0,
                        cores: 1,
                    })
                    .collect(),
            )
        };
        let a = mk(n1, &mut rng);
        let b = mk(n2, &mut rng);
        let m = a.merged(&b);
        prop_assert_eq!(m.len(), n1 + n2);
        for w in m.jobs().windows(2) {
            prop_assert!(w[0].submit_s <= w[1].submit_s);
        }
    }
}
