//! Property tests of WAL crash consistency: under random truncation points
//! and single-bit flips anywhere in the log, replay recovers exactly the
//! frames written before the damage, skips or truncates the damaged region,
//! and never fabricates a record — every `(lsn, record)` pair returned is
//! bitwise one that was appended.

use aequus_store::records::WalRecord;
use aequus_store::storage::{MemStorage, Storage};
use aequus_store::wal::{decode_frame, FrameOutcome, Wal};
use aequus_store::{SiteStore, StoreConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

use aequus_core::ids::{GridUser, JobId, SiteId};
use aequus_core::usage::{UsageRecord, UsageSummary};

/// Deterministic record zoo: kind and a handful of scalars fully determine
/// the record, so expected/actual comparisons are plain equality.
fn record(kind: u8, a: u64, b: u64) -> WalRecord {
    match kind % 3 {
        0 => WalRecord::Usage(UsageRecord {
            job: JobId(a),
            user: GridUser::new(format!("u{}", b % 5)),
            site: SiteId((a % 4) as u32),
            cores: (b % 8 + 1) as u32,
            start_s: (a % 1000) as f64,
            end_s: (a % 1000) as f64 + (b % 300) as f64 + 1.0,
        }),
        1 => {
            let mut slots = BTreeMap::new();
            slots.insert(a % 50, (b % 900) as f64 + 0.25);
            slots.insert(a % 50 + 1, (a % 700) as f64 + 0.5);
            let mut per_user = BTreeMap::new();
            per_user.insert(GridUser::new(format!("u{}", a % 5)), slots);
            let mut relayed = BTreeMap::new();
            if b.is_multiple_of(3) {
                let mut relay_slots = BTreeMap::new();
                relay_slots.insert(a % 30, (a % 500) as f64 + 0.125);
                let mut relay_cells = BTreeMap::new();
                relay_cells.insert(GridUser::new(format!("u{}", b % 5)), relay_slots);
                relayed.insert(SiteId((a % 7) as u32), relay_cells);
            }
            WalRecord::PeerData {
                summary: UsageSummary {
                    site: SiteId((b % 4) as u32),
                    seq: a % 100 + 1,
                    slot_s: 60.0,
                    per_user,
                    relayed,
                },
                snapshot: b.is_multiple_of(4),
            }
        }
        _ => WalRecord::Publish { seq: a % 1000 + 1 },
    }
}

/// Append `specs` through a real [`Wal`] into fresh [`MemStorage`],
/// returning the storage, the appended `(lsn, record)` pairs, and for each
/// record its `(segment name, frame end offset)` within that segment.
#[allow(clippy::type_complexity)]
fn build_wal(
    specs: &[(u8, u64, u64)],
    segment_bytes: u64,
) -> (MemStorage, Vec<(u64, WalRecord)>, Vec<(String, usize)>) {
    let mut storage = MemStorage::new();
    let (mut wal, recovered, _) =
        Wal::replay(&mut storage, segment_bytes).expect("fresh replay succeeds");
    assert!(recovered.is_empty());
    let mut appended = Vec::new();
    for &(k, a, b) in specs {
        let rec = record(k, a, b);
        let lsn = wal.append(&mut storage, &rec).expect("append succeeds");
        appended.push((lsn, rec));
    }
    // Recompute each frame's end offset by walking the pristine segments —
    // the same walk replay performs, so damage positions map exactly.
    let mut ends = Vec::new();
    let mut names: Vec<String> = storage.list();
    names.retain(|n| n.starts_with("wal-"));
    names.sort();
    for name in &names {
        let buf = storage.read(name).expect("segment readable");
        let mut at = 0usize;
        while at < buf.len() {
            match decode_frame(&buf, at) {
                FrameOutcome::Frame { next, .. } => {
                    ends.push((name.clone(), next));
                    at = next;
                }
                _ => panic!("pristine WAL must decode cleanly"),
            }
        }
    }
    assert_eq!(ends.len(), appended.len());
    (storage, appended, ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating any segment at any byte offset loses exactly the frames
    /// of that segment that do not fit below the cut — nothing else, and
    /// never a partial or invented record.
    #[test]
    fn truncation_recovers_exact_prefix(
        specs in proptest::collection::vec((0u8..3, 0u64..10_000, 0u64..10_000), 1..40),
        seg_pick in 0usize..1000,
        cut_pick in 0usize..100_000,
        small_segments in 0u8..2,
    ) {
        let segment_bytes = if small_segments == 0 { 512 } else { 1 << 20 };
        let (mut storage, appended, ends) = build_wal(&specs, segment_bytes);
        let mut names: Vec<String> = storage.list();
        names.retain(|n| n.starts_with("wal-"));
        names.sort();
        let victim = names[seg_pick % names.len()].clone();
        let obj = storage.object_mut(&victim).expect("segment exists");
        let cut = cut_pick % (obj.len() + 1);
        obj.truncate(cut);

        let (_, recovered, report) =
            Wal::replay(&mut storage, segment_bytes).expect("replay never errors on truncation");

        let expected: Vec<(u64, WalRecord)> = appended
            .iter()
            .zip(&ends)
            .filter(|(_, (name, end))| *name != victim || *end <= cut)
            .map(|(pair, _)| pair.clone())
            .collect();
        prop_assert_eq!(&recovered, &expected);
        let lost = appended.len() - expected.len();
        if lost > 0 {
            // A frame-boundary cut that removes only the tail of the whole
            // log is byte-for-byte a clean shutdown after fewer appends —
            // no replay can flag that. Everything else must be visible in
            // the report: torn/truncated bytes for mid-frame cuts, an LSN
            // gap for boundary cuts of a middle segment, a short sealed
            // segment for boundary cuts anywhere before the active one.
            let clean_tail_cut = expected[..] == appended[..expected.len()]
                && report.torn_tails == 0
                && report.truncated_bytes == 0
                && report.short_sealed_segments == 0;
            prop_assert!(
                clean_tail_cut
                    || report.torn_tails > 0
                    || report.truncated_bytes > 0
                    || report.lsn_gaps > 0
                    || report.short_sealed_segments > 0,
                "lost {} frames but report shows no damage: {:?}", lost, report
            );
        }
    }

    /// Flipping a single bit anywhere in the log never yields garbage:
    /// every recovered pair is one that was appended, order is preserved,
    /// frames before the damaged byte all survive, and the damaged frame
    /// itself is dropped and reported.
    #[test]
    fn single_bit_flip_never_fabricates(
        specs in proptest::collection::vec((0u8..3, 0u64..10_000, 0u64..10_000), 1..40),
        seg_pick in 0usize..1000,
        byte_pick in 0usize..100_000,
        bit in 0u8..8,
    ) {
        let segment_bytes = 1024u64;
        let (mut storage, appended, ends) = build_wal(&specs, segment_bytes);
        let mut names: Vec<String> = storage.list();
        names.retain(|n| n.starts_with("wal-"));
        names.sort();
        let victim = names[seg_pick % names.len()].clone();
        let obj = storage.object_mut(&victim).expect("segment exists");
        if obj.is_empty() {
            return Ok(());
        }
        let at = byte_pick % obj.len();
        obj[at] ^= 1 << bit;

        let (_, recovered, report) =
            Wal::replay(&mut storage, segment_bytes).expect("replay never errors on corruption");

        // Which appended frame absorbed the flip?
        let damaged_idx = appended
            .iter()
            .zip(&ends)
            .position(|(_, (name, end))| *name == victim && at < *end)
            .expect("flip lands inside some frame");

        // No fabrication: recovered is a subsequence of appended.
        let mut it = appended.iter();
        for pair in &recovered {
            prop_assert!(
                it.any(|orig| orig == pair),
                "recovered pair not among appended (or out of order): lsn {}", pair.0
            );
        }
        // The damaged frame never survives, and damage is reported.
        prop_assert!(
            !recovered.iter().any(|p| *p == appended[damaged_idx]),
            "bit-flipped frame passed CRC verification"
        );
        prop_assert!(
            report.corrupt_frames > 0 || report.torn_tails > 0 || report.truncated_bytes > 0,
            "flip dropped a frame but report shows no damage: {:?}", report
        );
        // Everything strictly before the damage point survives: frames in
        // earlier segments, and frames of the victim ending at or before
        // the flipped byte.
        for (pair, (name, end)) in appended.iter().zip(&ends) {
            let before = (name != &victim && name < &victim) || (name == &victim && *end <= at);
            if before {
                prop_assert!(
                    recovered.contains(pair),
                    "frame before damage lost: lsn {}", pair.0
                );
            }
        }
    }

    /// Crash/reopen cycles through the full store: every cycle appends a
    /// batch, tears the tail mid-write, and reopens. Replay must return
    /// every fully appended record and exactly one torn tail per cycle.
    #[test]
    fn torn_write_reopen_cycles(
        batches in proptest::collection::vec(
            proptest::collection::vec((0u8..3, 0u64..10_000, 0u64..10_000), 1..8),
            1..5,
        ),
        salt in 0u64..1_000_000,
    ) {
        let cfg = StoreConfig {
            segment_bytes: 1024,
            // Never checkpoint inside this test: replay then returns every
            // record, so the expectation stays exact.
            checkpoint_interval_s: f64::INFINITY,
        };
        let (mut store, _) =
            SiteStore::open(Box::new(MemStorage::new()), cfg).expect("fresh open");
        let mut appended: Vec<(u64, WalRecord)> = Vec::new();
        for (round, batch) in batches.iter().enumerate() {
            for &(k, a, b) in batch {
                let rec = record(k, a, b);
                let lsn = store.append(&rec).expect("append");
                appended.push((lsn, rec));
            }
            store
                .simulate_torn_write(salt.wrapping_add(round as u64))
                .expect("torn write");
            let storage = store.into_storage();
            let (reopened, recovered) = SiteStore::open(storage, cfg).expect("reopen");
            prop_assert_eq!(&recovered.records, &appended);
            prop_assert_eq!(recovered.report.torn_tails, 1);
            prop_assert!(recovered.checkpoint.is_none());
            store = reopened;
        }
    }
}
