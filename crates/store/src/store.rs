//! The per-site store facade: one [`SiteStore`] owns a [`Storage`] backend
//! holding both the segmented WAL and the two checkpoint slots, tracks
//! [`StoreStats`], and mirrors them into the telemetry registry so the
//! Prometheus/JSON exporters pick them up with every other metric.

use crate::checkpoint::{load_best, write_next, CheckpointState};
use crate::records::WalRecord;
use crate::storage::Storage;
use crate::wal::{encode_frame, ReplayReport, Wal, HEADER_LEN, KIND_RECORD};
use crate::StoreError;
use aequus_telemetry::{Counter, Gauge, Histogram, Telemetry};
use std::time::Instant;

/// Durable-store tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Roll the active WAL segment past this many bytes.
    pub segment_bytes: u64,
    /// Cut a checkpoint (and compact covered segments) at this cadence.
    pub checkpoint_interval_s: f64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 64 * 1024,
            checkpoint_interval_s: 300.0,
        }
    }
}

/// Cumulative store health counters (all monotonic except the byte gauges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Record frames appended to the WAL.
    pub frames_appended: u64,
    /// Record frames recovered by replay.
    pub frames_replayed: u64,
    /// Torn tails detected and truncated during replay.
    pub torn_tails: u64,
    /// Corrupt frames skipped (CRC mismatch / undecodable payload).
    pub corrupt_frames: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// WAL segments reclaimed by compaction.
    pub compacted_segments: u64,
    /// Size of the latest checkpoint, bytes.
    pub checkpoint_bytes: u64,
    /// Live WAL bytes across all segments.
    pub wal_bytes: u64,
}

impl StoreStats {
    /// Combine stats across store incarnations (the store is re-opened over
    /// the surviving backend after a crash): monotone counters sum, while
    /// the byte gauges reflect only the current incarnation.
    pub fn across_restart(base: Self, current: Self) -> Self {
        Self {
            frames_appended: base.frames_appended + current.frames_appended,
            frames_replayed: base.frames_replayed + current.frames_replayed,
            torn_tails: base.torn_tails + current.torn_tails,
            corrupt_frames: base.corrupt_frames + current.corrupt_frames,
            checkpoints: base.checkpoints + current.checkpoints,
            compacted_segments: base.compacted_segments + current.compacted_segments,
            checkpoint_bytes: current.checkpoint_bytes,
            wal_bytes: current.wal_bytes,
        }
    }

    fn absorb_report(&mut self, r: &ReplayReport) {
        self.frames_replayed += r.frames_replayed;
        self.torn_tails += r.torn_tails;
        self.corrupt_frames += r.corrupt_frames;
    }
}

/// Pre-registered telemetry handles (disabled handles are free no-ops, so
/// the struct exists unconditionally).
#[derive(Debug, Default)]
struct StoreMetrics {
    c_appended: Counter,
    c_replayed: Counter,
    c_torn: Counter,
    c_corrupt: Counter,
    c_checkpoints: Counter,
    c_compacted: Counter,
    g_checkpoint_bytes: Gauge,
    g_wal_bytes: Gauge,
    /// Wall seconds per WAL append (profiler `wal.append` stage).
    h_append: Histogram,
    /// Wall seconds per WAL replay at open (profiler `wal.replay` stage).
    h_replay: Histogram,
}

impl StoreMetrics {
    fn wire(t: &Telemetry) -> Self {
        Self {
            c_appended: t.counter("aequus_store_frames_appended_total"),
            c_replayed: t.counter("aequus_store_frames_replayed_total"),
            c_torn: t.counter("aequus_store_torn_tails_total"),
            c_corrupt: t.counter("aequus_store_corrupt_frames_total"),
            c_checkpoints: t.counter("aequus_store_checkpoints_total"),
            c_compacted: t.counter("aequus_store_compacted_segments_total"),
            g_checkpoint_bytes: t.gauge("aequus_store_checkpoint_bytes"),
            g_wal_bytes: t.gauge("aequus_store_wal_bytes"),
            h_append: t.histogram("aequus_store_wal_append_s"),
            h_replay: t.histogram("aequus_store_wal_replay_s"),
        }
    }
}

/// What [`SiteStore::open`] recovered from the backend.
#[derive(Debug)]
pub struct Recovered {
    /// Best valid checkpoint, if any slot held one.
    pub checkpoint: Option<CheckpointState>,
    /// Surviving WAL records *past* the checkpoint (LSN ascending); records
    /// the checkpoint already folds in are filtered out.
    pub records: Vec<(u64, WalRecord)>,
    /// Damage found and repaired during replay.
    pub report: ReplayReport,
}

/// The durable per-site store: WAL + alternating checkpoint slots over one
/// storage backend.
#[derive(Debug)]
pub struct SiteStore {
    storage: Box<dyn Storage + Send>,
    wal: Wal,
    cfg: StoreConfig,
    /// Slot holding the latest good checkpoint.
    current_slot: Option<usize>,
    stats: StoreStats,
    metrics: StoreMetrics,
    /// Wall seconds the WAL replay at open took. Held here (not in the
    /// `Eq`-comparable [`StoreStats`]) until telemetry is wired, which
    /// records it into `aequus_store_wal_replay_s` exactly once.
    replay_wall_s: f64,
}

impl SiteStore {
    /// Open (or create) a store over `storage`: replays the WAL, repairs
    /// crash damage, loads the best checkpoint, and returns the store plus
    /// everything the services layer must re-apply.
    pub fn open(
        mut storage: Box<dyn Storage + Send>,
        cfg: StoreConfig,
    ) -> Result<(Self, Recovered), StoreError> {
        let replay_start = Instant::now();
        let (wal, all_records, report) = Wal::replay(storage.as_mut(), cfg.segment_bytes)?;
        let replay_wall_s = replay_start.elapsed().as_secs_f64();
        let loaded = load_best(storage.as_ref());
        let (checkpoint, current_slot, checkpoint_bytes) = match loaded {
            Some((state, slot, bytes)) => (Some(state), Some(slot), bytes),
            None => (None, None, 0),
        };
        let ckpt_lsn = checkpoint.as_ref().map(|c| c.lsn).unwrap_or(0);
        let records: Vec<(u64, WalRecord)> = all_records
            .into_iter()
            .filter(|(lsn, _)| *lsn > ckpt_lsn)
            .collect();

        let mut stats = StoreStats {
            checkpoint_bytes,
            wal_bytes: wal.bytes(),
            ..StoreStats::default()
        };
        stats.absorb_report(&report);

        Ok((
            Self {
                storage,
                wal,
                cfg,
                current_slot,
                stats,
                metrics: StoreMetrics::default(),
                replay_wall_s,
            },
            Recovered {
                checkpoint,
                records,
                report,
            },
        ))
    }

    /// The store's configuration.
    pub fn config(&self) -> StoreConfig {
        self.cfg
    }

    /// Wire the store's counters/gauges into `telemetry`, carrying forward
    /// totals accumulated before wiring (e.g. replay damage found at open).
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        let m = StoreMetrics::wire(telemetry);
        m.c_appended.add(self.stats.frames_appended);
        m.c_replayed.add(self.stats.frames_replayed);
        m.c_torn.add(self.stats.torn_tails);
        m.c_corrupt.add(self.stats.corrupt_frames);
        m.c_checkpoints.add(self.stats.checkpoints);
        m.c_compacted.add(self.stats.compacted_segments);
        m.g_checkpoint_bytes.set(self.stats.checkpoint_bytes as f64);
        m.g_wal_bytes.set(self.stats.wal_bytes as f64);
        m.h_replay.record(self.replay_wall_s);
        self.metrics = m;
    }

    /// Journal one record; returns its LSN.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64, StoreError> {
        let timer = self.metrics.h_append.start_timer();
        let lsn = self.wal.append(self.storage.as_mut(), rec)?;
        timer.observe();
        self.stats.frames_appended += 1;
        self.stats.wal_bytes = self.wal.bytes();
        self.metrics.c_appended.inc();
        self.metrics.g_wal_bytes.set(self.stats.wal_bytes as f64);
        Ok(lsn)
    }

    /// LSN the next append will receive; `state.lsn` for a checkpoint
    /// cut *now* is `next_lsn() - 1` (everything appended so far).
    pub fn next_lsn(&self) -> u64 {
        self.wal.next_lsn()
    }

    /// Write `state` to the alternate checkpoint slot, then compact WAL
    /// segments the checkpoint covers (by LSN and by gossip sequence).
    pub fn checkpoint(&mut self, state: &CheckpointState) -> Result<(), StoreError> {
        let (slot, bytes) = write_next(self.storage.as_mut(), state, self.current_slot)?;
        self.current_slot = Some(slot);
        self.stats.checkpoints += 1;
        self.stats.checkpoint_bytes = bytes;
        self.metrics.c_checkpoints.inc();
        self.metrics.g_checkpoint_bytes.set(bytes as f64);

        let removed = self.wal.compact(
            self.storage.as_mut(),
            state.lsn,
            state.next_seq.saturating_sub(1),
            &state.peer_seq_cursors(),
        )?;
        self.stats.compacted_segments += removed;
        self.stats.wal_bytes = self.wal.bytes();
        self.metrics.c_compacted.add(removed);
        self.metrics.g_wal_bytes.set(self.stats.wal_bytes as f64);
        Ok(())
    }

    /// Simulate the write in flight at the instant of a crash: append a
    /// deterministic partial frame (header promising more payload than
    /// follows) to the active segment. The next [`SiteStore::open`] must
    /// truncate it as a torn tail, losing nothing that was fully appended.
    pub fn simulate_torn_write(&mut self, salt: u64) -> Result<(), StoreError> {
        // splitmix64-style junk: deterministic per salt, looks like data.
        let mut x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut junk_payload = [0u8; 24];
        for chunk in junk_payload.chunks_mut(8) {
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        // Frame a 4x larger payload, then deliver only the first part: the
        // header's declared length extends past end-of-segment on replay.
        let full = encode_frame(
            KIND_RECORD,
            &[junk_payload, junk_payload, junk_payload, junk_payload].concat(),
        );
        let torn = &full[..HEADER_LEN + junk_payload.len()];
        self.wal.append_torn_tail(self.storage.as_mut(), torn)?;
        self.stats.wal_bytes = self.wal.bytes();
        self.metrics.g_wal_bytes.set(self.stats.wal_bytes as f64);
        Ok(())
    }

    /// Current health counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Consume the store, yielding the backend — the simulator's "disk
    /// that survives the crash", re-opened on recovery.
    pub fn into_storage(self) -> Box<dyn Storage + Send> {
        self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use aequus_core::ids::{GridUser, JobId, SiteId};
    use aequus_core::usage::UsageRecord;

    fn usage(job: u64) -> WalRecord {
        WalRecord::Usage(UsageRecord {
            job: JobId(job),
            user: GridUser::new("U65"),
            site: SiteId(1),
            cores: 1,
            start_s: 0.0,
            end_s: 30.0,
        })
    }

    fn open_mem(storage: MemStorage, cfg: StoreConfig) -> (SiteStore, Recovered) {
        SiteStore::open(Box::new(storage), cfg).unwrap()
    }

    fn reopen(store: SiteStore) -> (SiteStore, Recovered) {
        let cfg = store.config();
        let storage = store.into_storage();
        SiteStore::open(storage, cfg).unwrap()
    }

    #[test]
    fn open_append_reopen_replays_everything() {
        let (mut store, rec0) = open_mem(MemStorage::new(), StoreConfig::default());
        assert!(rec0.checkpoint.is_none() && rec0.records.is_empty());
        for j in 0..10 {
            store.append(&usage(j)).unwrap();
        }
        let (_, recovered) = reopen(store);
        assert_eq!(recovered.records.len(), 10);
        assert_eq!(recovered.report.frames_replayed, 10);
    }

    #[test]
    fn checkpoint_filters_covered_records_and_compacts() {
        let cfg = StoreConfig {
            segment_bytes: 128,
            ..StoreConfig::default()
        };
        let (mut store, _) = open_mem(MemStorage::new(), cfg);
        for j in 0..20 {
            store.append(&usage(j)).unwrap();
        }
        let ckpt = CheckpointState {
            lsn: store.next_lsn() - 1,
            site: SiteId(1),
            slot_s: 60.0,
            next_seq: 1,
            ..CheckpointState::default()
        };
        store.checkpoint(&ckpt).unwrap();
        let stats = store.stats();
        assert!(stats.compacted_segments > 0, "{stats:?}");
        assert_eq!(stats.checkpoints, 1);
        assert!(stats.checkpoint_bytes > 0);

        // Two fresh records after the checkpoint; reopen yields only them.
        store.append(&usage(100)).unwrap();
        store.append(&usage(101)).unwrap();
        let (_, recovered) = reopen(store);
        assert_eq!(recovered.checkpoint.as_ref().map(|c| c.lsn), Some(20));
        let jobs: Vec<u64> = recovered
            .records
            .iter()
            .filter_map(|(_, r)| match r {
                WalRecord::Usage(u) => Some(u.job.0),
                _ => None,
            })
            .collect();
        assert_eq!(jobs, vec![100, 101]);
    }

    #[test]
    fn torn_write_loses_at_most_the_partial_frame() {
        let (mut store, _) = open_mem(MemStorage::new(), StoreConfig::default());
        for j in 0..7 {
            store.append(&usage(j)).unwrap();
        }
        store.simulate_torn_write(0xDEAD).unwrap();
        let (store, recovered) = reopen(store);
        assert_eq!(recovered.records.len(), 7, "all real frames survive");
        assert_eq!(recovered.report.torn_tails, 1);
        assert_eq!(store.stats().torn_tails, 1);
    }

    #[test]
    fn telemetry_carries_pre_wiring_totals() {
        let (mut store, _) = open_mem(MemStorage::new(), StoreConfig::default());
        for j in 0..3 {
            store.append(&usage(j)).unwrap();
        }
        store.simulate_torn_write(1).unwrap();
        let (mut store, _) = reopen(store);

        let t = Telemetry::enabled();
        store.set_telemetry(&t);
        store.append(&usage(9)).unwrap();
        let snap = t.snapshot().unwrap();
        assert_eq!(
            snap.counters.get("aequus_store_frames_replayed_total"),
            Some(&3)
        );
        assert_eq!(snap.counters.get("aequus_store_torn_tails_total"), Some(&1));
        assert_eq!(
            snap.counters.get("aequus_store_frames_appended_total"),
            Some(&1),
            "appends before wiring happened in the previous incarnation"
        );
        assert!(
            snap.gauges
                .get("aequus_store_wal_bytes")
                .copied()
                .unwrap_or(0.0)
                > 0.0
        );
        // The WAL service timings feed the profiler's wal.* stages: replay
        // is recorded exactly once per open, appends per call.
        assert_eq!(snap.histograms["aequus_store_wal_replay_s"].count, 1);
        assert_eq!(snap.histograms["aequus_store_wal_append_s"].count, 1);
    }
}
