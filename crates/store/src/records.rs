//! The WAL's logical record types and their binary codecs: everything a
//! site must re-apply after a crash that is *not* captured by the latest
//! checkpoint — locally ingested job records, peer exchange data already
//! merged into the views, and the publisher's own sequence advances.

use crate::codec::{CodecError, Reader, Writer};
use aequus_core::ids::{GridUser, JobId, SiteId};
use aequus_core::usage::{UsageRecord, UsageSummary};
use std::collections::BTreeMap;

/// One durable WAL entry.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A job usage record ingested into the local histogram.
    Usage(UsageRecord),
    /// Peer exchange data applied to the remote view: the absolute
    /// cumulative summary as received, and whether it arrived as a
    /// cumulative `Snapshot` (vs an incremental `Data` summary).
    PeerData {
        /// The summary exactly as merged.
        summary: UsageSummary,
        /// `true` when it was a cumulative snapshot.
        snapshot: bool,
    },
    /// The local publisher advanced its sequence counter to `seq` —
    /// replayed so a recovered site never reuses sequence numbers peers
    /// have already acked (stale-ack protection).
    Publish {
        /// The sequence number just published.
        seq: u64,
    },
}

const TAG_USAGE: u8 = 1;
const TAG_PEER_DATA: u8 = 2;
const TAG_PUBLISH: u8 = 3;

/// Encode a [`UsageRecord`].
fn encode_usage(w: &mut Writer, rec: &UsageRecord) {
    w.u64(rec.job.0);
    w.str(rec.user.as_str());
    w.u32(rec.site.0);
    w.u32(rec.cores);
    w.f64(rec.start_s);
    w.f64(rec.end_s);
}

/// Decode a [`UsageRecord`].
fn decode_usage(r: &mut Reader<'_>) -> Result<UsageRecord, CodecError> {
    Ok(UsageRecord {
        job: JobId(r.u64()?),
        user: GridUser::new(&r.str()?),
        site: SiteId(r.u32()?),
        cores: r.u32()?,
        start_s: r.f64()?,
        end_s: r.f64()?,
    })
}

/// Encode per-user usage cells (user → slot → charge).
pub fn encode_cells(w: &mut Writer, cells: &BTreeMap<GridUser, BTreeMap<u64, f64>>) {
    w.u32(cells.len() as u32);
    for (user, slots) in cells {
        w.str(user.as_str());
        w.u32(slots.len() as u32);
        for (&slot, &charge) in slots {
            w.u64(slot);
            w.f64(charge);
        }
    }
}

/// Decode per-user usage cells.
pub fn decode_cells(
    r: &mut Reader<'_>,
) -> Result<BTreeMap<GridUser, BTreeMap<u64, f64>>, CodecError> {
    // Lower bounds: a user entry is ≥ 8 bytes (name len + slot count), a
    // cell is exactly 16.
    let users = r.seq_len(8)?;
    let mut cells = BTreeMap::new();
    for _ in 0..users {
        let user = GridUser::new(&r.str()?);
        let slots = r.seq_len(16)?;
        let mut per_slot = BTreeMap::new();
        for _ in 0..slots {
            let slot = r.u64()?;
            let charge = r.f64()?;
            per_slot.insert(slot, charge);
        }
        cells.insert(user, per_slot);
    }
    Ok(cells)
}

/// Encode a [`UsageSummary`], including any relayed per-origin sections
/// (overlay interior nodes journal exactly what they merged).
pub fn encode_summary(w: &mut Writer, s: &UsageSummary) {
    w.u32(s.site.0);
    w.u64(s.seq);
    w.f64(s.slot_s);
    encode_cells(w, &s.per_user);
    w.u32(s.relayed.len() as u32);
    for (origin, cells) in &s.relayed {
        w.u32(origin.0);
        encode_cells(w, cells);
    }
}

/// Decode a [`UsageSummary`].
pub fn decode_summary(r: &mut Reader<'_>) -> Result<UsageSummary, CodecError> {
    let site = SiteId(r.u32()?);
    let seq = r.u64()?;
    let slot_s = r.f64()?;
    let per_user = decode_cells(r)?;
    let norigins = r.seq_len(8)?;
    let mut relayed = BTreeMap::new();
    for _ in 0..norigins {
        let origin = SiteId(r.u32()?);
        relayed.insert(origin, decode_cells(r)?);
    }
    Ok(UsageSummary {
        site,
        seq,
        slot_s,
        per_user,
        relayed,
    })
}

impl WalRecord {
    /// Encode into `w`.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            WalRecord::Usage(rec) => {
                w.u8(TAG_USAGE);
                encode_usage(w, rec);
            }
            WalRecord::PeerData { summary, snapshot } => {
                w.u8(TAG_PEER_DATA);
                w.u8(u8::from(*snapshot));
                encode_summary(w, summary);
            }
            WalRecord::Publish { seq } => {
                w.u8(TAG_PUBLISH);
                w.u64(*seq);
            }
        }
    }

    /// Decode from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            TAG_USAGE => Ok(WalRecord::Usage(decode_usage(r)?)),
            TAG_PEER_DATA => {
                let snapshot = r.u8()? != 0;
                Ok(WalRecord::PeerData {
                    summary: decode_summary(r)?,
                    snapshot,
                })
            }
            TAG_PUBLISH => Ok(WalRecord::Publish { seq: r.u64()? }),
            t => Err(CodecError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary(seq: u64) -> UsageSummary {
        let mut per_user = BTreeMap::new();
        let mut slots = BTreeMap::new();
        slots.insert(3u64, 120.5);
        slots.insert(7u64, 0.25);
        per_user.insert(GridUser::new("U65"), slots);
        per_user.insert(GridUser::new("U30"), BTreeMap::new());
        let mut relayed = BTreeMap::new();
        let mut relay_slots = BTreeMap::new();
        relay_slots.insert(9u64, 64.0);
        let mut relay_cells = BTreeMap::new();
        relay_cells.insert(GridUser::new("U7"), relay_slots);
        relayed.insert(SiteId(9), relay_cells);
        UsageSummary {
            site: SiteId(4),
            seq,
            slot_s: 60.0,
            per_user,
            relayed,
        }
    }

    fn round_trip(rec: &WalRecord) -> WalRecord {
        let mut w = Writer::new();
        rec.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let out = WalRecord::decode(&mut r).unwrap();
        assert!(r.is_done(), "decoder must consume the full encoding");
        out
    }

    #[test]
    fn usage_round_trip() {
        let rec = WalRecord::Usage(UsageRecord {
            job: JobId(991),
            user: GridUser::new("U3"),
            site: SiteId(2),
            cores: 16,
            start_s: 10.0,
            end_s: 190.75,
        });
        assert_eq!(round_trip(&rec), rec);
    }

    #[test]
    fn peer_data_round_trip() {
        for snapshot in [false, true] {
            let rec = WalRecord::PeerData {
                summary: sample_summary(17),
                snapshot,
            };
            assert_eq!(round_trip(&rec), rec);
        }
    }

    #[test]
    fn publish_round_trip() {
        let rec = WalRecord::Publish { seq: u64::MAX };
        assert_eq!(round_trip(&rec), rec);
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let mut r = Reader::new(&[0xFF, 0, 0, 0]);
        assert!(matches!(
            WalRecord::decode(&mut r),
            Err(CodecError::BadTag(0xFF))
        ));
    }

    #[test]
    fn truncated_record_is_an_error() {
        let mut w = Writer::new();
        WalRecord::PeerData {
            summary: sample_summary(3),
            snapshot: true,
        }
        .encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(WalRecord::decode(&mut r).is_err(), "cut at {cut}");
        }
    }
}
