//! Minimal hand-rolled binary codec: little-endian fixed-width integers,
//! `f64` as raw bits, length-prefixed strings, and length-guarded
//! collections. No external serialization crates — the store must decode
//! *hostile* bytes (bit flips, truncation) without panicking, so every read
//! is bounds-checked and every declared length is validated against the
//! bytes actually remaining before any allocation.

use std::fmt;

/// Decoding failure. Encoders are infallible; decoders return this for any
/// malformed input and never panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the declared value.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A declared collection/string length exceeds the remaining input —
    /// decoding it would allocate unbounded garbage.
    BadLength {
        /// Declared element count.
        declared: u64,
        /// Remaining input bytes (lower bound on plausibility).
        remaining: usize,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// An enum tag byte outside the known range.
    BadTag(u8),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, {remaining} remain"
                )
            }
            CodecError::BadLength {
                declared,
                remaining,
            } => write!(
                f,
                "implausible length {declared} with only {remaining} bytes remaining"
            ),
            CodecError::BadUtf8 => write!(f, "length-prefixed string is not valid UTF-8"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its raw IEEE-754 bits, little-endian (bit-exact
    /// round trip, NaN-safe).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Write a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write raw bytes with no prefix (caller owns framing).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Decoder over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the input is fully consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `f64` from its raw bits.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `u32`-length-prefixed UTF-8 string. The declared length is
    /// validated against the remaining input before allocating.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(CodecError::BadLength {
                declared: len as u64,
                remaining: self.remaining(),
            });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// Read a `u32` collection-length prefix, validating it against a
    /// per-element lower bound of `min_elem_bytes` so corrupt prefixes
    /// cannot drive unbounded decode loops.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let len = self.u32()? as usize;
        if len.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(CodecError::BadLength {
                declared: len as u64,
                remaining: self.remaining(),
            });
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("grid-user/α");
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "grid-user/α");
        assert!(r.is_done());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.u64(42);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.u64().is_err());
        }
    }

    #[test]
    fn implausible_string_length_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // declared length far beyond the input
        w.raw(b"abc");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str(), Err(CodecError::BadLength { .. })));
    }

    #[test]
    fn seq_len_guards_against_allocation_bombs() {
        let mut w = Writer::new();
        w.u32(1_000_000);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.seq_len(8), Err(CodecError::BadLength { .. })));
    }
}
