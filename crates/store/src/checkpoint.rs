//! Checkpoint snapshots: a single CRC-framed object capturing everything a
//! site needs to restart without replaying its full history — the USS local
//! histogram and ingest counters, the publisher sequence, per-peer exchange
//! cursors, the origin-scoped absolute-cell mirrors the positive-delta
//! merge depends on, and the UMS decayed-usage cache.
//!
//! Checkpoints alternate between two slots (`ckpt-a` / `ckpt-b`): a write
//! always targets the slot *not* holding the latest good snapshot, so a
//! crash mid-checkpoint — or later bit rot in one slot — can cost at most
//! one checkpoint interval, never the ability to recover at all. Loading
//! decodes both slots and picks the valid one with the highest LSN.

use crate::codec::{CodecError, Reader, Writer};
use crate::records::{decode_cells, encode_cells};
use crate::storage::Storage;
use crate::wal::{decode_frame, encode_frame, FrameOutcome, KIND_CHECKPOINT};
use crate::StoreError;
use aequus_core::ids::{GridUser, SiteId};
use std::collections::{BTreeMap, BTreeSet};

/// Checkpoint format version (bumped on incompatible layout changes;
/// decoders reject unknown versions rather than misreading them).
/// Version 2 moved the merge mirrors from per-peer cursors to the
/// origin-scoped `origin_cells` map (hierarchical-overlay support).
const VERSION: u8 = 2;

/// The two alternating slot names.
pub const SLOTS: [&str; 2] = ["ckpt-a", "ckpt-b"];

/// Per-peer exchange cursor as of the checkpoint. Sequence state only —
/// the merge mirrors are origin-scoped, not link-scoped, and live in
/// [`CheckpointState::origin_cells`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PeerCursor {
    /// Next summary sequence expected from this peer (1-based); the
    /// highest absorbed is `next_expected - 1`.
    pub next_expected: u64,
}

/// Everything a checkpoint captures. Produced by the services layer
/// (`Uss::export_checkpoint`), installed back on recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// WAL position the snapshot covers: every record with LSN ≤ this is
    /// folded into the state and must not be re-applied.
    pub lsn: u64,
    /// Simulation/wall time the checkpoint was cut.
    pub taken_s: f64,
    /// The owning site.
    pub site: SiteId,
    /// Histogram slot duration (sanity-checked on install).
    pub slot_s: f64,
    /// Local histogram cells (user → slot → accumulated charge), stored
    /// with full `f64` bits so local replay is bitwise exact.
    pub local_cells: BTreeMap<GridUser, BTreeMap<u64, f64>>,
    /// Job records ingested so far (counter continuity across restarts).
    pub records_ingested: u64,
    /// Next publish sequence number.
    pub next_seq: u64,
    /// Per-peer exchange cursors.
    pub peers: BTreeMap<SiteId, PeerCursor>,
    /// Absolute cumulative cells already merged, keyed by **originating**
    /// site — the receive-side mirror the positive-delta merge is computed
    /// against. Origin-scoped so relayed deliveries (hierarchical overlays)
    /// restore identically to direct ones.
    pub origin_cells: BTreeMap<SiteId, BTreeMap<GridUser, BTreeMap<u64, f64>>>,
    /// UMS decay epoch, if a refresh has happened.
    pub ums_epoch_s: Option<f64>,
    /// UMS cached decayed usage per user (valid at `ums_epoch_s`).
    pub ums_cached: BTreeMap<GridUser, f64>,
    /// Users with usage changes not yet absorbed by a UMS refresh at
    /// checkpoint time. `None` means *all* users were pending (the
    /// conservative whole-tree marker).
    pub dirty_users: Option<BTreeSet<GridUser>>,
}

impl Default for CheckpointState {
    fn default() -> Self {
        Self {
            lsn: 0,
            taken_s: 0.0,
            site: SiteId(0),
            slot_s: 0.0,
            local_cells: BTreeMap::new(),
            records_ingested: 0,
            next_seq: 1,
            peers: BTreeMap::new(),
            origin_cells: BTreeMap::new(),
            ums_epoch_s: None,
            ums_cached: BTreeMap::new(),
            dirty_users: None,
        }
    }
}

impl CheckpointState {
    /// Highest peer summary sequence absorbed, per peer — the gossip
    /// cursors WAL compaction is keyed to.
    pub fn peer_seq_cursors(&self) -> BTreeMap<SiteId, u64> {
        self.peers
            .iter()
            .map(|(site, c)| (*site, c.next_expected.saturating_sub(1)))
            .collect()
    }

    /// Encode to the framed on-disk representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(VERSION);
        w.u64(self.lsn);
        w.f64(self.taken_s);
        w.u32(self.site.0);
        w.f64(self.slot_s);
        encode_cells(&mut w, &self.local_cells);
        w.u64(self.records_ingested);
        w.u64(self.next_seq);
        w.u32(self.peers.len() as u32);
        for (site, cursor) in &self.peers {
            w.u32(site.0);
            w.u64(cursor.next_expected);
        }
        w.u32(self.origin_cells.len() as u32);
        for (origin, cells) in &self.origin_cells {
            w.u32(origin.0);
            encode_cells(&mut w, cells);
        }
        match self.ums_epoch_s {
            Some(e) => {
                w.u8(1);
                w.f64(e);
            }
            None => w.u8(0),
        }
        w.u32(self.ums_cached.len() as u32);
        for (user, usage) in &self.ums_cached {
            w.str(user.as_str());
            w.f64(*usage);
        }
        match &self.dirty_users {
            None => w.u8(0),
            Some(users) => {
                w.u8(1);
                w.u32(users.len() as u32);
                for u in users {
                    w.str(u.as_str());
                }
            }
        }
        encode_frame(KIND_CHECKPOINT, &w.into_bytes())
    }

    /// Decode the payload of a checkpoint frame.
    fn decode_payload(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(payload);
        let version = r.u8()?;
        if version != VERSION {
            return Err(CodecError::BadTag(version));
        }
        let lsn = r.u64()?;
        let taken_s = r.f64()?;
        let site = SiteId(r.u32()?);
        let slot_s = r.f64()?;
        let local_cells = decode_cells(&mut r)?;
        let records_ingested = r.u64()?;
        let next_seq = r.u64()?;
        let npeers = r.seq_len(12)?;
        let mut peers = BTreeMap::new();
        for _ in 0..npeers {
            let peer = SiteId(r.u32()?);
            let next_expected = r.u64()?;
            peers.insert(peer, PeerCursor { next_expected });
        }
        let norigins = r.seq_len(8)?;
        let mut origin_cells = BTreeMap::new();
        for _ in 0..norigins {
            let origin = SiteId(r.u32()?);
            let cells = decode_cells(&mut r)?;
            origin_cells.insert(origin, cells);
        }
        let ums_epoch_s = match r.u8()? {
            0 => None,
            _ => Some(r.f64()?),
        };
        let ncached = r.seq_len(12)?;
        let mut ums_cached = BTreeMap::new();
        for _ in 0..ncached {
            let user = GridUser::new(&r.str()?);
            let usage = r.f64()?;
            ums_cached.insert(user, usage);
        }
        let dirty_users = match r.u8()? {
            0 => None,
            _ => {
                let n = r.seq_len(4)?;
                let mut users = BTreeSet::new();
                for _ in 0..n {
                    users.insert(GridUser::new(&r.str()?));
                }
                Some(users)
            }
        };
        Ok(Self {
            lsn,
            taken_s,
            site,
            slot_s,
            local_cells,
            records_ingested,
            next_seq,
            peers,
            origin_cells,
            ums_epoch_s,
            ums_cached,
            dirty_users,
        })
    }

    /// Decode one slot's bytes: verify the frame CRC, then the payload.
    /// Any damage — torn write, bit flip, wrong kind — yields `None`.
    pub fn decode_slot(bytes: &[u8]) -> Option<Self> {
        match decode_frame(bytes, 0) {
            FrameOutcome::Frame { kind, payload, .. } if kind == KIND_CHECKPOINT => {
                Self::decode_payload(payload).ok()
            }
            _ => None,
        }
    }
}

/// Load the best available checkpoint: both slots are decoded and the
/// valid one with the highest LSN wins. Returns the state, the slot index
/// it came from, and its on-disk size.
pub fn load_best(storage: &dyn Storage) -> Option<(CheckpointState, usize, u64)> {
    let mut best: Option<(CheckpointState, usize, u64)> = None;
    for (i, slot) in SLOTS.iter().enumerate() {
        let Ok(bytes) = storage.read(slot) else {
            continue;
        };
        if let Some(state) = CheckpointState::decode_slot(&bytes) {
            let better = best
                .as_ref()
                .map(|(b, _, _)| state.lsn > b.lsn)
                .unwrap_or(true);
            if better {
                best = Some((state, i, bytes.len() as u64));
            }
        }
    }
    best
}

/// Write `state` to the slot *other* than `current_slot` (the one holding
/// the latest good snapshot), returning the new slot index and byte size.
pub fn write_next(
    storage: &mut dyn Storage,
    state: &CheckpointState,
    current_slot: Option<usize>,
) -> Result<(usize, u64), StoreError> {
    let target = match current_slot {
        Some(0) => 1,
        Some(_) => 0,
        None => 0,
    };
    let bytes = state.encode();
    storage.replace(SLOTS[target], &bytes)?;
    Ok((target, bytes.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn sample(lsn: u64) -> CheckpointState {
        let mut local_cells = BTreeMap::new();
        let mut slots = BTreeMap::new();
        slots.insert(5u64, 321.0625);
        local_cells.insert(GridUser::new("U65"), slots);
        let mut peers = BTreeMap::new();
        peers.insert(SiteId(2), PeerCursor { next_expected: 9 });
        let mut origin_cells = BTreeMap::new();
        origin_cells.insert(SiteId(2), local_cells.clone());
        let mut ums_cached = BTreeMap::new();
        ums_cached.insert(GridUser::new("U65"), 0.125);
        CheckpointState {
            lsn,
            taken_s: 1234.5,
            site: SiteId(1),
            slot_s: 60.0,
            local_cells,
            records_ingested: 42,
            next_seq: 17,
            peers,
            origin_cells,
            ums_epoch_s: Some(1200.0),
            ums_cached,
            dirty_users: Some([GridUser::new("U30")].into_iter().collect()),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let state = sample(7);
        let bytes = state.encode();
        assert_eq!(CheckpointState::decode_slot(&bytes), Some(state));
    }

    #[test]
    fn all_dirty_marker_round_trips() {
        let mut state = sample(7);
        state.dirty_users = None;
        let bytes = state.encode();
        assert_eq!(
            CheckpointState::decode_slot(&bytes).unwrap().dirty_users,
            None
        );
    }

    #[test]
    fn damaged_slot_is_rejected_not_misread() {
        let state = sample(7);
        let bytes = state.encode();
        for i in (0..bytes.len()).step_by(7) {
            let mut damaged = bytes.clone();
            damaged[i] ^= 0x04;
            // Either rejected outright or (if the flip missed anything the
            // CRC covers — impossible by construction) identical.
            assert_eq!(CheckpointState::decode_slot(&damaged), None, "flip at {i}");
        }
        for cut in 0..bytes.len() {
            assert_eq!(
                CheckpointState::decode_slot(&bytes[..cut]),
                None,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn slots_alternate_and_best_lsn_wins() {
        let mut storage = MemStorage::new();
        let (slot0, _) = write_next(&mut storage, &sample(5), None).unwrap();
        assert_eq!(slot0, 0);
        let (slot1, _) = write_next(&mut storage, &sample(9), Some(slot0)).unwrap();
        assert_eq!(slot1, 1);

        let (best, slot, _) = load_best(&storage).unwrap();
        assert_eq!((best.lsn, slot), (9, 1));

        // Corrupting the newest slot falls back to the older one.
        storage.object_mut(SLOTS[1]).unwrap()[3] ^= 0xFF;
        let (best, slot, _) = load_best(&storage).unwrap();
        assert_eq!((best.lsn, slot), (5, 0));
    }

    #[test]
    fn peer_seq_cursors_derive_from_next_expected() {
        let state = sample(7);
        let cursors = state.peer_seq_cursors();
        assert_eq!(cursors.get(&SiteId(2)), Some(&8));
    }
}
