//! The storage backend abstraction the WAL and checkpoints write through:
//! a tiny named-object store with append, atomic replace, truncate, and
//! removal.
//!
//! Two implementations ship:
//!
//! * [`MemStorage`] — deterministic in-memory "disk" for the simulator.
//!   A site's [`MemStorage`] lives *outside* the volatile service state, so
//!   a simulated crash wipes the services but the storage — like a real
//!   disk — survives for replay.
//! * [`FileStorage`] — one file per object under a root directory, with
//!   `replace` done as write-to-temp + rename so checkpoint slots are never
//!   observable half-written.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;

/// Storage-layer failure (I/O errors for [`FileStorage`]; [`MemStorage`]
/// only reports missing objects).
#[derive(Debug)]
pub enum StorageError {
    /// The named object does not exist.
    NotFound(String),
    /// An underlying I/O failure (file backend).
    Io {
        /// Object the operation targeted.
        name: String,
        /// Source error.
        source: std::io::Error,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NotFound(name) => write!(f, "object {name:?} not found"),
            StorageError::Io { name, source } => write!(f, "i/o on {name:?}: {source}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// A named-object store. Object names are flat strings (the WAL uses
/// `wal-NNNNNNNN.log`, checkpoints use `ckpt-a` / `ckpt-b`).
pub trait Storage: fmt::Debug {
    /// All object names, sorted.
    fn list(&self) -> Vec<String>;
    /// Size of `name` in bytes, or `None` if absent.
    fn len(&self, name: &str) -> Option<u64>;
    /// Full contents of `name`.
    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError>;
    /// Append `bytes` to `name`, creating it if absent.
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError>;
    /// Atomically replace the contents of `name` with `bytes`.
    fn replace(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError>;
    /// Shrink `name` to `len` bytes (no-op if already shorter).
    fn truncate(&mut self, name: &str, len: u64) -> Result<(), StorageError>;
    /// Delete `name` (no error if absent).
    fn remove(&mut self, name: &str) -> Result<(), StorageError>;
}

/// Deterministic in-memory storage backend.
#[derive(Debug, Default, Clone)]
pub struct MemStorage {
    objects: BTreeMap<String, Vec<u8>>,
}

impl MemStorage {
    /// Empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Direct access to an object's bytes — test hook for injecting damage
    /// (bit flips, truncation) between a write and a replay.
    pub fn object_mut(&mut self, name: &str) -> Option<&mut Vec<u8>> {
        self.objects.get_mut(name)
    }
}

impl Storage for MemStorage {
    fn list(&self) -> Vec<String> {
        self.objects.keys().cloned().collect()
    }

    fn len(&self, name: &str) -> Option<u64> {
        self.objects.get(name).map(|b| b.len() as u64)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError> {
        self.objects
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(name.to_string()))
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.objects
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn replace(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.objects.insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), StorageError> {
        if let Some(obj) = self.objects.get_mut(name) {
            obj.truncate(len as usize);
        }
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), StorageError> {
        self.objects.remove(name);
        Ok(())
    }
}

/// File-per-object storage under a root directory. `replace` writes a
/// `.tmp` sibling and renames it into place, so a crash mid-replace leaves
/// either the old or the new contents, never a torn mix.
#[derive(Debug)]
pub struct FileStorage {
    root: PathBuf,
}

impl FileStorage {
    /// Open (creating if needed) the directory `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|source| StorageError::Io {
            name: root.display().to_string(),
            source,
        })?;
        Ok(Self { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn io(name: &str, source: std::io::Error) -> StorageError {
        StorageError::Io {
            name: name.to_string(),
            source,
        }
    }
}

impl Storage for FileStorage {
    fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.root)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                (!name.ends_with(".tmp")).then_some(name)
            })
            .collect();
        names.sort();
        names
    }

    fn len(&self, name: &str) -> Option<u64> {
        std::fs::metadata(self.path(name)).ok().map(|m| m.len())
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StorageError::NotFound(name.to_string()))
            }
            Err(e) => Err(Self::io(name, e)),
        }
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .map_err(|e| Self::io(name, e))?;
        f.write_all(bytes).map_err(|e| Self::io(name, e))
    }

    fn replace(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let tmp = self.path(&format!("{name}.tmp"));
        std::fs::write(&tmp, bytes).map_err(|e| Self::io(name, e))?;
        std::fs::rename(&tmp, self.path(name)).map_err(|e| Self::io(name, e))
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), StorageError> {
        match std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))
        {
            Ok(f) => {
                // `set_len` would *extend* a shorter file with zeros;
                // truncate is shrink-only by contract.
                let cur = f.metadata().map_err(|e| Self::io(name, e))?.len();
                if len < cur {
                    f.set_len(len).map_err(|e| Self::io(name, e))?;
                }
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(Self::io(name, e)),
        }
    }

    fn remove(&mut self, name: &str) -> Result<(), StorageError> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(Self::io(name, e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(storage: &mut dyn Storage) {
        assert!(storage.list().is_empty());
        storage.append("a", b"hello ").unwrap();
        storage.append("a", b"world").unwrap();
        assert_eq!(storage.read("a").unwrap(), b"hello world");
        assert_eq!(storage.len("a"), Some(11));

        storage.replace("a", b"short").unwrap();
        assert_eq!(storage.read("a").unwrap(), b"short");

        storage.truncate("a", 2).unwrap();
        assert_eq!(storage.read("a").unwrap(), b"sh");
        storage.truncate("a", 100).unwrap(); // longer than current: no-op
        assert_eq!(storage.read("a").unwrap(), b"sh");

        storage.append("b", b"x").unwrap();
        assert_eq!(storage.list(), vec!["a".to_string(), "b".to_string()]);

        storage.remove("a").unwrap();
        storage.remove("a").unwrap(); // idempotent
        assert!(matches!(storage.read("a"), Err(StorageError::NotFound(_))));
        assert_eq!(storage.len("a"), None);
    }

    #[test]
    fn mem_storage_contract() {
        exercise(&mut MemStorage::new());
    }

    #[test]
    fn file_storage_contract() {
        let dir = std::env::temp_dir().join(format!(
            "aequus-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut storage = FileStorage::open(&dir).unwrap();
        exercise(&mut storage);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
