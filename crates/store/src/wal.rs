//! The segmented append-only write-ahead log.
//!
//! ## Frame format
//!
//! Every frame is `[magic 0xA9][kind u8][len u32 LE][crc u32 LE][payload]`
//! (10-byte header). `len` is the payload length; `crc` is CRC-32 over
//! `kind`, `len`, and the payload, so any single-bit damage to either the
//! header fields or the body is detected. Record-frame payloads begin with
//! the record's 8-byte LSN so positions survive segment compaction.
//!
//! ## Replay and repair
//!
//! Replay scans segments in name order and classifies damage:
//!
//! * **Torn tail** — fewer bytes than a header remain, or the declared
//!   payload extends past end-of-segment: the in-flight write at crash
//!   time. The tail is truncated away and counted; every frame before it
//!   is recovered.
//! * **Corrupt frame (bad CRC)** — header intact but checksum mismatch:
//!   the frame is skipped by its declared length, counted, and the scan
//!   continues — damage to one frame never hides later intact frames.
//! * **Corrupt stream (bad magic)** — the scan has lost framing (e.g. a
//!   bit flip in a length field made the previous skip land mid-frame).
//!   The segment is truncated at the corruption point: no bytes after the
//!   damage are ever interpreted as data.
//!
//! A frame is only ever returned with a verified CRC, so replay never
//! yields garbage.
//!
//! ## Compaction
//!
//! Sealed segments are reclaimed once a checkpoint covers them — both by
//! LSN (`last_lsn ≤` the checkpoint's) *and* by gossip sequence number:
//! a segment holding peer data or publishes with sequence numbers beyond
//! the checkpoint's cursors is retained, so the anti-entropy path can
//! always reconstruct what the checkpoint has not yet absorbed.

use crate::codec::{Reader, Writer};
use crate::crc::Crc32;
use crate::records::WalRecord;
use crate::storage::Storage;
use crate::StoreError;
use aequus_core::ids::SiteId;
use std::collections::BTreeMap;

/// First byte of every frame.
pub const MAGIC: u8 = 0xA9;
/// Frame kind: one [`WalRecord`].
pub const KIND_RECORD: u8 = 1;
/// Frame kind: a checkpoint snapshot (used by checkpoint slots, which are
/// single-frame objects protected by the same CRC framing).
pub const KIND_CHECKPOINT: u8 = 2;
/// Frame header length: magic (1) + kind (1) + len (4) + crc (4).
pub const HEADER_LEN: usize = 10;

/// Hard upper bound on a single frame payload (16 MiB) — rejects insane
/// declared lengths early instead of attempting huge skips.
const MAX_PAYLOAD: u32 = 16 << 20;

/// Encode one frame.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let len = payload.len() as u32;
    let mut crc = Crc32::new();
    crc.update(&[kind]);
    crc.update(&len.to_le_bytes());
    crc.update(payload);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.push(MAGIC);
    out.push(kind);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Outcome of decoding the frame at one offset.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameOutcome<'a> {
    /// A CRC-verified frame; `next` is the offset just past it.
    Frame {
        /// Frame kind byte.
        kind: u8,
        /// Verified payload bytes.
        payload: &'a [u8],
        /// Offset of the next frame.
        next: usize,
    },
    /// Torn tail: not enough bytes for a header, or the declared payload
    /// runs past the end of the buffer.
    TornTail,
    /// Header intact but the checksum fails; `next` skips the declared
    /// payload so scanning can continue.
    CorruptFrame {
        /// Offset just past the corrupt frame.
        next: usize,
    },
    /// Framing lost (bad magic or implausible length): nothing at or after
    /// this offset can be trusted.
    CorruptStream,
}

/// Decode the frame starting at `at`. The buffer end is the segment end.
pub fn decode_frame(buf: &[u8], at: usize) -> FrameOutcome<'_> {
    let remaining = buf.len() - at;
    if remaining < HEADER_LEN {
        return FrameOutcome::TornTail;
    }
    let h = &buf[at..at + HEADER_LEN];
    if h[0] != MAGIC {
        return FrameOutcome::CorruptStream;
    }
    let kind = h[1];
    let len = u32::from_le_bytes([h[2], h[3], h[4], h[5]]);
    if len > MAX_PAYLOAD {
        return FrameOutcome::CorruptStream;
    }
    let stored_crc = u32::from_le_bytes([h[6], h[7], h[8], h[9]]);
    let body_end = at + HEADER_LEN + len as usize;
    if body_end > buf.len() {
        return FrameOutcome::TornTail;
    }
    let payload = &buf[at + HEADER_LEN..body_end];
    let mut crc = Crc32::new();
    crc.update(&[kind]);
    crc.update(&len.to_le_bytes());
    crc.update(payload);
    if crc.finish() != stored_crc {
        return FrameOutcome::CorruptFrame { next: body_end };
    }
    FrameOutcome::Frame {
        kind,
        payload,
        next: body_end,
    }
}

/// Per-segment bookkeeping: LSN span plus the highest gossip sequence
/// numbers the segment's records reference, keying compaction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SegmentMeta {
    /// Object name (`wal-NNNNNNNN.log`).
    pub name: String,
    /// Lowest record LSN in the segment (`u64::MAX` while empty).
    pub first_lsn: u64,
    /// Highest record LSN in the segment (0 while empty).
    pub last_lsn: u64,
    /// Record frames held.
    pub frames: u64,
    /// Current byte size.
    pub bytes: u64,
    /// Highest local publish sequence journaled here.
    pub max_publish_seq: u64,
    /// Highest peer summary sequence journaled here, per peer site.
    pub max_peer_seq: BTreeMap<SiteId, u64>,
}

impl SegmentMeta {
    fn new(name: String) -> Self {
        Self {
            name,
            first_lsn: u64::MAX,
            ..Self::default()
        }
    }

    fn note(&mut self, lsn: u64, rec: &WalRecord) {
        self.first_lsn = self.first_lsn.min(lsn);
        self.last_lsn = self.last_lsn.max(lsn);
        self.frames += 1;
        match rec {
            WalRecord::Publish { seq } => {
                self.max_publish_seq = self.max_publish_seq.max(*seq);
            }
            WalRecord::PeerData { summary, .. } if summary.seq > 0 => {
                let e = self.max_peer_seq.entry(summary.site).or_insert(0);
                *e = (*e).max(summary.seq);
            }
            _ => {}
        }
    }
}

/// What replay found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// CRC-verified record frames decoded.
    pub frames_replayed: u64,
    /// Torn tails truncated away (at most one per segment).
    pub torn_tails: u64,
    /// Frames skipped for checksum mismatch or undecodable payload.
    pub corrupt_frames: u64,
    /// Bytes removed by tail/stream truncation.
    pub truncated_bytes: u64,
    /// Segments scanned.
    pub segments_scanned: u64,
    /// Discontinuities in the recovered LSN sequence. A gap means frames
    /// are missing from the *middle* of the log — silent loss that leaves
    /// no byte-level trace, e.g. a segment truncated exactly on a frame
    /// boundary — or a span legitimately dropped by checkpoint compaction
    /// under gossip retention; the caller's checkpoint knows which.
    pub lsn_gaps: u64,
    /// Sealed (non-final) segments shorter than the roll threshold. A
    /// segment only rolls once it is full, so a short sealed segment was
    /// truncated — either by damage this replay could not otherwise see
    /// (a frame-boundary cut decodes cleanly) or as the scar of a past
    /// repair. Only meaningful while `segment_bytes` is stable across runs.
    pub short_sealed_segments: u64,
}

/// The segmented WAL. All storage operations go through the [`Storage`]
/// handle passed per call — the caller (the site store) owns the backend
/// so WAL and checkpoints share it.
#[derive(Debug)]
pub struct Wal {
    segments: Vec<SegmentMeta>,
    /// Numeric suffix for the next segment created.
    next_segment_no: u64,
    /// LSN the next appended record receives.
    next_lsn: u64,
    /// Roll the active segment once it exceeds this many bytes.
    segment_bytes: u64,
}

/// Result of [`Wal::replay`]: the recovered log, every surviving
/// `(lsn, record)` pair in LSN order, and the damage report.
pub type ReplayOutcome = (Wal, Vec<(u64, WalRecord)>, ReplayReport);

fn segment_name(no: u64) -> String {
    format!("wal-{no:08}.log")
}

fn parse_segment_no(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

impl Wal {
    /// Scan `storage` for existing segments, repair crash damage (torn
    /// tails, lost framing), and return the recovered log, every surviving
    /// record in LSN order, and the damage report.
    pub fn replay(
        storage: &mut dyn Storage,
        segment_bytes: u64,
    ) -> Result<ReplayOutcome, StoreError> {
        let mut names: Vec<(u64, String)> = storage
            .list()
            .into_iter()
            .filter_map(|n| parse_segment_no(&n).map(|no| (no, n)))
            .collect();
        names.sort();

        let mut report = ReplayReport::default();
        let mut records = Vec::new();
        let mut segments = Vec::new();
        let mut next_lsn = 1u64;
        for (_, name) in &names {
            let buf = storage.read(name)?;
            let mut meta = SegmentMeta::new(name.clone());
            let mut at = 0usize;
            let mut keep_until = 0usize;
            while at < buf.len() {
                match decode_frame(&buf, at) {
                    FrameOutcome::Frame {
                        kind,
                        payload,
                        next,
                    } => {
                        if kind == KIND_RECORD {
                            let mut r = Reader::new(payload);
                            match r
                                .u64()
                                .and_then(|lsn| WalRecord::decode(&mut r).map(|rec| (lsn, rec)))
                            {
                                Ok((lsn, rec)) => {
                                    report.frames_replayed += 1;
                                    meta.note(lsn, &rec);
                                    next_lsn = next_lsn.max(lsn + 1);
                                    records.push((lsn, rec));
                                }
                                // CRC fine but payload undecodable (e.g.
                                // written by a newer format): count, skip.
                                Err(_) => report.corrupt_frames += 1,
                            }
                        }
                        at = next;
                        keep_until = next;
                    }
                    FrameOutcome::CorruptFrame { next } => {
                        report.corrupt_frames += 1;
                        at = next;
                        // The skipped span stays on disk (rewriting history
                        // is riskier than carrying dead bytes), but nothing
                        // after a later framing loss is preserved.
                        keep_until = next;
                    }
                    FrameOutcome::TornTail => {
                        report.torn_tails += 1;
                        break;
                    }
                    FrameOutcome::CorruptStream => {
                        report.corrupt_frames += 1;
                        break;
                    }
                }
            }
            if keep_until < buf.len() {
                report.truncated_bytes += (buf.len() - keep_until) as u64;
                storage.truncate(name, keep_until as u64)?;
            }
            meta.bytes = keep_until as u64;
            report.segments_scanned += 1;
            segments.push(meta);
        }

        records.sort_by_key(|(lsn, _)| *lsn);
        report.lsn_gaps = records.windows(2).filter(|w| w[1].0 > w[0].0 + 1).count() as u64;
        report.short_sealed_segments = segments
            .iter()
            .rev()
            .skip(1)
            .filter(|seg| seg.bytes < segment_bytes)
            .count() as u64;
        let next_segment_no = names.last().map(|(no, _)| no + 1).unwrap_or(0);
        let mut wal = Self {
            segments,
            next_segment_no,
            next_lsn,
            segment_bytes: segment_bytes.max(1),
        };
        if wal.segments.is_empty() {
            wal.open_segment(storage)?;
        }
        Ok((wal, records, report))
    }

    fn open_segment(&mut self, storage: &mut dyn Storage) -> Result<(), StoreError> {
        let name = segment_name(self.next_segment_no);
        self.next_segment_no += 1;
        storage.replace(&name, &[])?;
        self.segments.push(SegmentMeta::new(name));
        Ok(())
    }

    fn active(&mut self) -> &mut SegmentMeta {
        self.segments
            .last_mut()
            .unwrap_or_else(|| unreachable!("wal always holds an active segment"))
    }

    /// Append `rec`, returning its LSN. Rolls to a fresh segment first when
    /// the active one is full.
    pub fn append(
        &mut self,
        storage: &mut dyn Storage,
        rec: &WalRecord,
    ) -> Result<u64, StoreError> {
        if self.active().bytes >= self.segment_bytes {
            self.open_segment(storage)?;
        }
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let mut w = Writer::new();
        w.u64(lsn);
        rec.encode(&mut w);
        let frame = encode_frame(KIND_RECORD, &w.into_bytes());
        let seg = self.active();
        let name = seg.name.clone();
        seg.note(lsn, rec);
        seg.bytes += frame.len() as u64;
        storage.append(&name, &frame)?;
        Ok(lsn)
    }

    /// Append raw damage to the active segment — the simulator's "torn
    /// write in flight at the instant of the crash". The bytes claim a full
    /// frame but deliver only part of it, so the next replay truncates them
    /// as a torn tail. Nothing already appended is affected.
    pub fn append_torn_tail(
        &mut self,
        storage: &mut dyn Storage,
        junk: &[u8],
    ) -> Result<(), StoreError> {
        let seg = self.active();
        let name = seg.name.clone();
        seg.bytes += junk.len() as u64;
        storage.append(&name, junk)?;
        Ok(())
    }

    /// Drop sealed segments fully covered by a checkpoint: `last_lsn ≤
    /// ckpt_lsn` *and* every gossip sequence the segment references is at
    /// or below the checkpoint's cursors (`publish_seq` for our own
    /// publishes; `peer_cursors[site]` = highest peer seq absorbed).
    /// The active segment is never compacted. Returns segments removed.
    pub fn compact(
        &mut self,
        storage: &mut dyn Storage,
        ckpt_lsn: u64,
        publish_seq: u64,
        peer_cursors: &BTreeMap<SiteId, u64>,
    ) -> Result<u64, StoreError> {
        let sealed = self.segments.len().saturating_sub(1);
        let mut removed = 0u64;
        let mut keep = Vec::with_capacity(self.segments.len());
        for (i, seg) in self.segments.drain(..).enumerate() {
            let empty = seg.frames == 0;
            let covered = i < sealed
                && (empty
                    || (seg.last_lsn <= ckpt_lsn
                        && seg.max_publish_seq <= publish_seq
                        && seg.max_peer_seq.iter().all(|(site, &seq)| {
                            peer_cursors.get(site).is_some_and(|&c| seq <= c)
                        })));
            if covered {
                storage.remove(&seg.name)?;
                removed += 1;
            } else {
                keep.push(seg);
            }
        }
        self.segments = keep;
        Ok(removed)
    }

    /// Total live WAL bytes across segments.
    pub fn bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// Current segment metadata, oldest first (last entry is active).
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.segments
    }

    /// LSN the next append will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use aequus_core::ids::{GridUser, JobId};
    use aequus_core::usage::UsageRecord;

    fn usage(job: u64) -> WalRecord {
        WalRecord::Usage(UsageRecord {
            job: JobId(job),
            user: GridUser::new("U65"),
            site: SiteId(1),
            cores: 2,
            start_s: 0.0,
            end_s: 60.0,
        })
    }

    fn fresh(storage: &mut MemStorage, segment_bytes: u64) -> Wal {
        Wal::replay(storage, segment_bytes).unwrap().0
    }

    #[test]
    fn append_then_replay_round_trips() {
        let mut storage = MemStorage::new();
        let mut wal = fresh(&mut storage, 1 << 16);
        for j in 0..20 {
            wal.append(&mut storage, &usage(j)).unwrap();
        }
        let (wal2, records, report) = Wal::replay(&mut storage, 1 << 16).unwrap();
        assert_eq!(records.len(), 20);
        assert_eq!(report.frames_replayed, 20);
        assert_eq!(report.torn_tails, 0);
        assert_eq!(report.corrupt_frames, 0);
        assert_eq!(wal2.next_lsn(), wal.next_lsn());
        for (i, (lsn, rec)) in records.iter().enumerate() {
            assert_eq!(*lsn, i as u64 + 1);
            assert_eq!(*rec, usage(i as u64));
        }
    }

    #[test]
    fn segments_roll_at_size_threshold() {
        let mut storage = MemStorage::new();
        let mut wal = fresh(&mut storage, 128);
        for j in 0..50 {
            wal.append(&mut storage, &usage(j)).unwrap();
        }
        assert!(wal.segments().len() > 2, "{}", wal.segments().len());
        let (_, records, _) = Wal::replay(&mut storage, 128).unwrap();
        assert_eq!(records.len(), 50);
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let mut storage = MemStorage::new();
        let mut wal = fresh(&mut storage, 1 << 16);
        for j in 0..5 {
            wal.append(&mut storage, &usage(j)).unwrap();
        }
        // A header claiming 100 payload bytes, followed by only 3.
        let mut junk = encode_frame(KIND_RECORD, &[0u8; 100])[..HEADER_LEN].to_vec();
        junk.extend_from_slice(&[1, 2, 3]);
        wal.append_torn_tail(&mut storage, &junk).unwrap();

        let (_, records, report) = Wal::replay(&mut storage, 1 << 16).unwrap();
        assert_eq!(records.len(), 5, "every pre-tear frame survives");
        assert_eq!(report.torn_tails, 1);
        assert_eq!(report.truncated_bytes, junk.len() as u64);

        // Idempotent: a second replay sees a clean log.
        let (_, records, report) = Wal::replay(&mut storage, 1 << 16).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(report.torn_tails, 0);
    }

    #[test]
    fn payload_bit_flip_skips_one_frame_only() {
        let mut storage = MemStorage::new();
        let mut wal = fresh(&mut storage, 1 << 16);
        for j in 0..5 {
            wal.append(&mut storage, &usage(j)).unwrap();
        }
        // Flip one payload bit of the middle frame.
        let name = wal.segments()[0].name.clone();
        let buf = storage.object_mut(&name).unwrap();
        let frame_len = encode_frame(KIND_RECORD, &{
            let mut w = Writer::new();
            w.u64(1);
            usage(0).encode(&mut w);
            w.into_bytes()
        })
        .len();
        buf[2 * frame_len + HEADER_LEN + 4] ^= 0x10;

        let (_, records, report) = Wal::replay(&mut storage, 1 << 16).unwrap();
        assert_eq!(report.corrupt_frames, 1);
        assert_eq!(records.len(), 4, "only the damaged frame is lost");
        let lsns: Vec<u64> = records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![1, 2, 4, 5]);
    }

    #[test]
    fn magic_damage_truncates_the_rest() {
        let mut storage = MemStorage::new();
        let mut wal = fresh(&mut storage, 1 << 16);
        for j in 0..5 {
            wal.append(&mut storage, &usage(j)).unwrap();
        }
        let name = wal.segments()[0].name.clone();
        let frame_len = {
            let mut w = Writer::new();
            w.u64(1);
            usage(0).encode(&mut w);
            encode_frame(KIND_RECORD, &w.into_bytes()).len()
        };
        let buf = storage.object_mut(&name).unwrap();
        buf[3 * frame_len] = 0x00; // kill frame 3's magic byte

        let (_, records, report) = Wal::replay(&mut storage, 1 << 16).unwrap();
        assert_eq!(records.len(), 3, "frames before the framing loss survive");
        assert!(report.corrupt_frames >= 1);
        assert!(report.truncated_bytes > 0, "rest of segment truncated");
    }

    #[test]
    fn compaction_respects_lsn_and_gossip_seq() {
        let mut storage = MemStorage::new();
        let mut wal = fresh(&mut storage, 96);
        // Fill several segments with publishes of rising seq.
        for seq in 1..=12u64 {
            wal.append(&mut storage, &WalRecord::Publish { seq })
                .unwrap();
        }
        let sealed = wal.segments().len() - 1;
        assert!(sealed >= 2);
        let last_lsn = wal.next_lsn() - 1;

        // A checkpoint that absorbed everything but whose publish cursor
        // only reaches seq 4: segments with higher publish seqs survive.
        let removed = wal
            .compact(&mut storage, last_lsn, 4, &BTreeMap::new())
            .unwrap();
        assert!(removed >= 1);
        assert!(
            wal.segments()
                .iter()
                .take(wal.segments().len() - 1)
                .all(|s| s.max_publish_seq > 4),
            "surviving sealed segments must exceed the cursor"
        );

        // Full coverage: everything sealed goes.
        wal.compact(&mut storage, last_lsn, 12, &BTreeMap::new())
            .unwrap();
        assert_eq!(wal.segments().len(), 1, "only the active segment remains");

        // Replay after compaction keeps LSN continuity.
        let (wal2, records, _) = Wal::replay(&mut storage, 96).unwrap();
        assert!(records.iter().all(|(lsn, _)| *lsn > 0));
        assert_eq!(wal2.next_lsn(), wal.next_lsn());
    }

    #[test]
    fn peer_seq_holds_back_compaction() {
        let mut storage = MemStorage::new();
        let mut wal = fresh(&mut storage, 64);
        use aequus_core::usage::UsageSummary;
        for seq in 1..=6u64 {
            wal.append(
                &mut storage,
                &WalRecord::PeerData {
                    summary: UsageSummary {
                        site: SiteId(9),
                        seq,
                        slot_s: 60.0,
                        per_user: BTreeMap::new(),
                        relayed: BTreeMap::new(),
                    },
                    snapshot: false,
                },
            )
            .unwrap();
        }
        let last_lsn = wal.next_lsn() - 1;
        let before = wal.segments().len();

        // Cursor for site 9 stuck at 2: nothing holding seqs > 2 compacts.
        let mut cursors = BTreeMap::new();
        cursors.insert(SiteId(9), 2u64);
        wal.compact(&mut storage, last_lsn, u64::MAX, &cursors)
            .unwrap();
        assert!(
            wal.segments().len() >= before - 1,
            "high-seq segments survive a stale peer cursor"
        );

        cursors.insert(SiteId(9), 6u64);
        wal.compact(&mut storage, last_lsn, u64::MAX, &cursors)
            .unwrap();
        assert_eq!(wal.segments().len(), 1);
    }
}
