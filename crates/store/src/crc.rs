//! Table-driven CRC-32 (IEEE 802.3): reflected polynomial `0xEDB8_8320`,
//! initial value and final xor `0xFFFF_FFFF` — the same parametrization as
//! zlib's `crc32`, so frames written here are checkable with stock tools.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 over multiple byte slices (frame headers and payloads
/// are hashed without concatenating them first).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Fold `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &b in data {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a single slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_vector() {
        // The canonical CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Crc32::new();
        h.update(&data[..10]);
        h.update(&data[10..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for i in 0..64 {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {i} bit {bit}");
                data[i] ^= 1 << bit;
            }
        }
    }
}
