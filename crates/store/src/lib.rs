//! # aequus-store
//!
//! Durable per-site state for the Aequus services: a segmented,
//! CRC32-framed append-only write-ahead log plus alternating checkpoint
//! snapshots, with crash-consistent replay — torn tails are truncated,
//! corrupt frames are skipped and reported, and WAL segments are compacted
//! once a checkpoint covers them both by LSN *and* by gossip sequence
//! number (so anti-entropy can always rebuild what the checkpoint hasn't
//! absorbed).
//!
//! The paper's services were long-running daemons whose histograms and
//! exchange cursors had to survive restarts; this crate supplies that
//! durability layer for the reproduction. The simulator runs it over the
//! deterministic in-memory backend ([`MemStorage`]); [`FileStorage`] backs
//! real deployments with one file per object and atomic checkpoint
//! replacement.
//!
//! Layering: [`SiteStore`] (facade) → [`wal`] / [`checkpoint`] (formats) →
//! [`Storage`] (backend). Logical content is defined by [`WalRecord`] and
//! [`CheckpointState`]; the services layer decides *what* to journal and
//! how to re-apply it (see `aequus-services`).

#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod crc;
pub mod records;
pub mod storage;
pub mod store;
pub mod wal;

pub use checkpoint::{CheckpointState, PeerCursor};
pub use records::WalRecord;
pub use storage::{FileStorage, MemStorage, Storage, StorageError};
pub use store::{Recovered, SiteStore, StoreConfig, StoreStats};
pub use wal::ReplayReport;

use std::fmt;

/// Store-layer failure: backend I/O trouble. Format damage is *not* an
/// error — replay repairs and reports it via [`ReplayReport`] — so this
/// only surfaces when the backend itself misbehaves.
#[derive(Debug)]
pub enum StoreError {
    /// The storage backend failed.
    Storage(StorageError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Storage(e) => write!(f, "storage backend: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Storage(e) => Some(e),
        }
    }
}

impl From<StorageError> for StoreError {
    fn from(e: StorageError) -> Self {
        StoreError::Storage(e)
    }
}
