//! Property-based round-trip tests of the snapshot exporters: for random
//! registries and randomly-populated snapshots, `from_prometheus ∘
//! to_prometheus` and `from_json ∘ to_json` are the identity (modulo the
//! documented Prometheus event omission). NaN is excluded — `Snapshot`
//! equality is `PartialEq` and the formats document NaN as a one-way value.

use aequus_telemetry::export::{from_json, from_prometheus, to_json, to_prometheus};
use aequus_telemetry::{HistogramSnapshot, Registry, Snapshot, TelemetryEvent};
use proptest::prelude::*;

/// A Prometheus-safe metric identifier.
fn metric_name() -> impl Strategy<Value = String> {
    (0usize..6, 0u32..50).prop_map(|(k, n)| {
        let prefix = [
            "aequus_uss",
            "aequus_ums",
            "aequus_fcs",
            "lib",
            "_x",
            "Grid9",
        ][k];
        format!("{prefix}_{n}")
    })
}

/// An arbitrary string exercising the JSON escape paths: quotes,
/// backslashes, newlines, control characters, non-ASCII.
fn weird_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..12, 0..12).prop_map(|picks| {
        let charset = [
            'a', 'Z', '0', '_', '"', '\\', '\n', '\u{1}', '\u{1f}', 'π', ' ', '}',
        ];
        picks.into_iter().map(|i| charset[i]).collect()
    })
}

/// A finite-or-infinite f64 (never NaN).
fn value() -> impl Strategy<Value = f64> {
    (0usize..8, -1e300..1e300f64).prop_map(|(k, v)| match k {
        0 => f64::INFINITY,
        1 => f64::NEG_INFINITY,
        2 => 0.0,
        3 => v * 1e-300, // subnormal territory
        _ => v,
    })
}

fn histogram_snapshot() -> impl Strategy<Value = HistogramSnapshot> {
    (proptest::collection::vec(value(), 4), 0u64..u64::MAX).prop_map(|(vs, count)| {
        HistogramSnapshot {
            count,
            sum: vs[0],
            max: vs[1],
            p50: vs[2],
            p95: vs[2].min(vs[3]), // quantile order is irrelevant to the format
            p99: vs[3],
        }
    })
}

/// A snapshot assembled field-by-field with extreme values, bypassing the
/// registry: full-range u64 counters, ±inf gauges, arbitrary histograms.
fn extreme_snapshot<S: Strategy<Value = String>>(
    names: impl Fn() -> S,
) -> impl Strategy<Value = Snapshot> {
    (
        proptest::collection::vec((names(), 0u64..u64::MAX), 0..6),
        proptest::collection::vec((names(), value()), 0..6),
        proptest::collection::vec((names(), histogram_snapshot()), 0..6),
    )
        .prop_map(|(counters, gauges, histograms)| {
            let mut snap = Snapshot::default();
            for (n, v) in counters {
                snap.counters.insert(n, v);
            }
            for (n, v) in gauges {
                snap.gauges.insert(n, v);
            }
            for (n, h) in histograms {
                snap.histograms.insert(n, h);
            }
            snap
        })
}

/// A snapshot produced the way production code produces them: random
/// operations against a live registry (includes zero-count histograms and
/// the +inf overflow bucket).
fn registry_snapshot() -> impl Strategy<Value = Snapshot> {
    proptest::collection::vec((0usize..3, metric_name(), -1e9..1e12f64), 0..40).prop_map(|ops| {
        let r = Registry::new();
        for (kind, name, v) in ops {
            match kind {
                0 => r.counter(&name).add(v.abs() as u64),
                1 => r.gauge(&name).set(v),
                _ => {
                    let h = r.histogram(&name);
                    if v > 1e11 {
                        // Touch the histogram without recording: a
                        // zero-count snapshot must still round-trip.
                    } else {
                        h.record(v.abs());
                    }
                }
            }
        }
        r.snapshot()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn prometheus_round_trips_random_registries(snap in registry_snapshot()) {
        let back = from_prometheus(&to_prometheus(&snap));
        prop_assert_eq!(back.as_ref(), Some(&snap));
    }

    #[test]
    fn json_round_trips_random_registries(snap in registry_snapshot()) {
        let back = from_json(&to_json(&snap));
        prop_assert_eq!(back.as_ref(), Some(&snap));
    }

    #[test]
    fn prometheus_round_trips_extreme_snapshots(snap in extreme_snapshot(metric_name)) {
        let back = from_prometheus(&to_prometheus(&snap));
        prop_assert_eq!(back.as_ref(), Some(&snap));
    }

    #[test]
    fn json_round_trips_extreme_snapshots(snap in extreme_snapshot(metric_name)) {
        let back = from_json(&to_json(&snap));
        prop_assert_eq!(back.as_ref(), Some(&snap));
    }

    #[test]
    fn json_round_trips_hostile_names_and_events(
        mut snap in extreme_snapshot(weird_string),
        events in proptest::collection::vec((weird_string(), weird_string(), -1e6..1e6f64), 0..6),
        dropped in 0u64..u64::MAX,
    ) {
        for (kind, detail, t_s) in events {
            snap.events.push(TelemetryEvent { t_s, kind, detail });
        }
        snap.events_dropped = dropped;
        let back = from_json(&to_json(&snap));
        prop_assert_eq!(back.as_ref(), Some(&snap));
    }

    #[test]
    fn prometheus_omits_events_but_keeps_metrics(
        mut snap in extreme_snapshot(metric_name),
        t_s in -1e6..1e6f64,
    ) {
        snap.events.push(TelemetryEvent {
            t_s,
            kind: "uss.gossip_merge".to_string(),
            detail: "x".to_string(),
        });
        let back = from_prometheus(&to_prometheus(&snap)).expect("parses");
        prop_assert!(back.events.is_empty());
        prop_assert_eq!(&back.counters, &snap.counters);
        prop_assert_eq!(&back.gauges, &snap.gauges);
        prop_assert_eq!(&back.histograms, &snap.histograms);
    }
}
