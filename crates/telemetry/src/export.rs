//! Snapshot exporters: Prometheus text exposition and JSON, plus parsers
//! for both so a scraped/archived snapshot can be loaded back (used by the
//! bench harness and the round-trip tests). Hand-rolled — the telemetry
//! crate carries no dependencies.
//!
//! Non-finite values (`+inf` from the histogram overflow bucket) are
//! rendered as `inf` in Prometheus text (as the real exporter does) and as
//! the JSON strings `"inf"` / `"-inf"` / `"nan"` so the JSON stays valid.

use crate::events::TelemetryEvent;
use crate::hist::HistogramSnapshot;
use crate::registry::Snapshot;
use std::collections::BTreeMap;

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-inf".to_string()
    } else if v.is_nan() {
        "nan".to_string()
    } else {
        // `{:?}` is the shortest representation that round-trips.
        format!("{v:?}")
    }
}

fn parse_f64(s: &str) -> Option<f64> {
    match s {
        "inf" | "+inf" => Some(f64::INFINITY),
        "-inf" => Some(f64::NEG_INFINITY),
        "nan" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

/// Escape a label value for the Prometheus text exposition format:
/// backslash, double quote, and newline must be escaped or the series line
/// is unparseable (a raw newline even breaks the format's line framing).
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The canonical labeled series key `base{k="v",…}` with escaped label
/// values (just `base` when `labels` is empty). Registry entries keyed this
/// way export verbatim and round-trip through [`from_prometheus`] — this is
/// how user- and site-named series carry hostile characters safely.
pub fn series_name(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut out = format!("{base}{{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{k}=\"{}\"", escape_label_value(v)));
    }
    out.push('}');
    out
}

/// The series name with any `{…}` label section removed.
fn base_name(series: &str) -> &str {
    series.split('{').next().unwrap_or(series)
}

/// Render `snap` in the Prometheus text exposition format. Histograms are
/// exported as summaries: `<name>{quantile="…"}` series plus `_count`,
/// `_sum`, and `_max`. Labeled counter/gauge series (keys built with
/// [`series_name`]) share one `# TYPE` comment per base name. Events are
/// *not* rendered — the exposition format has no place for them; use
/// [`to_json`] for a lossless archive.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut typed: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for (name, v) in &snap.counters {
        let base = base_name(name);
        if typed.insert(base) {
            out.push_str(&format!("# TYPE {base} counter\n"));
        }
        out.push_str(&format!("{name} {v}\n"));
    }
    typed.clear();
    for (name, v) in &snap.gauges {
        let base = base_name(name);
        if typed.insert(base) {
            out.push_str(&format!("# TYPE {base} gauge\n"));
        }
        out.push_str(&format!("{name} {}\n", fmt_f64(*v)));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
            out.push_str(&format!("{name}{{quantile=\"{q}\"}} {}\n", fmt_f64(v)));
        }
        out.push_str(&format!("{name}_count {}\n", h.count));
        out.push_str(&format!("{name}_sum {}\n", fmt_f64(h.sum)));
        out.push_str(&format!("{name}_max {}\n", fmt_f64(h.max)));
    }
    out
}

/// Split a sample line into `(series, value)`. A naive `rsplit(' ')` would
/// split inside quoted label values (spaces are legal there); instead, scan
/// past the label section respecting quotes and backslash escapes.
fn split_sample(line: &str) -> Option<(&str, &str)> {
    let Some(open) = line.find('{') else {
        return line.rsplit_once(' ');
    };
    let bytes = line.as_bytes();
    let mut i = open + 1;
    let mut in_quotes = false;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_quotes => i += 1,
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => {
                let value = line[i + 1..].trim();
                if value.is_empty() {
                    return None;
                }
                return Some((&line[..=i], value));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parse text produced by [`to_prometheus`] back into a [`Snapshot`].
/// Returns `None` on any malformed line.
pub fn from_prometheus(text: &str) -> Option<Snapshot> {
    let mut snap = Snapshot::default();
    // name -> declared type, from `# TYPE` comments.
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest.split_once(' ')?;
            types.insert(name.to_string(), ty.to_string());
            if ty == "summary" {
                snap.histograms
                    .insert(name.to_string(), HistogramSnapshot::default());
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = split_sample(line)?;
        if let Some((name, labels)) = series.split_once('{') {
            // Histogram quantile series keep their dedicated decoding; any
            // other labeled series is a counter or gauge stored under its
            // full (already-canonical) series key.
            let quantile = labels
                .strip_suffix("\"}")
                .and_then(|l| l.strip_prefix("quantile=\""));
            if let (Some(q), Some(h)) = (quantile, snap.histograms.get_mut(name)) {
                let v = parse_f64(value)?;
                match q {
                    "0.5" => h.p50 = v,
                    "0.95" => h.p95 = v,
                    "0.99" => h.p99 = v,
                    _ => return None,
                }
                continue;
            }
            match types.get(name).map(String::as_str) {
                Some("counter") => {
                    snap.counters
                        .insert(series.to_string(), value.parse().ok()?);
                }
                Some("gauge") => {
                    snap.gauges.insert(series.to_string(), parse_f64(value)?);
                }
                _ => return None,
            }
            continue;
        }
        // Histogram component series or a plain counter/gauge.
        if let Some(name) = series.strip_suffix("_count") {
            if let Some(h) = snap.histograms.get_mut(name) {
                h.count = value.parse().ok()?;
                continue;
            }
        }
        if let Some(name) = series.strip_suffix("_sum") {
            if let Some(h) = snap.histograms.get_mut(name) {
                h.sum = parse_f64(value)?;
                continue;
            }
        }
        if let Some(name) = series.strip_suffix("_max") {
            if let Some(h) = snap.histograms.get_mut(name) {
                h.max = parse_f64(value)?;
                continue;
            }
        }
        match types.get(series).map(String::as_str) {
            Some("counter") => {
                snap.counters
                    .insert(series.to_string(), value.parse().ok()?);
            }
            Some("gauge") => {
                snap.gauges.insert(series.to_string(), parse_f64(value)?);
            }
            _ => return None,
        }
    }
    Some(snap)
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        fmt_f64(v)
    } else {
        format!("\"{}\"", fmt_f64(v))
    }
}

/// Render `snap` as a JSON object with `counters`, `gauges`, `histograms`,
/// `events`, and `events_dropped` members.
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    let mut first = true;
    for (name, v) in &snap.counters {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":{v}", json_escape(name)));
    }
    out.push_str("},\"gauges\":{");
    first = true;
    for (name, v) in &snap.gauges {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":{}", json_escape(name), json_f64(*v)));
    }
    out.push_str("},\"histograms\":{");
    first = true;
    for (name, h) in &snap.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            json_escape(name),
            h.count,
            json_f64(h.sum),
            json_f64(h.max),
            json_f64(h.p50),
            json_f64(h.p95),
            json_f64(h.p99),
        ));
    }
    out.push_str("},\"events\":[");
    first = true;
    for ev in &snap.events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"t_s\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
            json_f64(ev.t_s),
            json_escape(&ev.kind),
            json_escape(&ev.detail),
        ));
    }
    out.push_str(&format!("],\"events_dropped\":{}}}", snap.events_dropped));
    out
}

// --- A minimal JSON reader sufficient for `to_json` output. ---

struct JsonReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonReader<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos)?;
            self.pos += 1;
            match b {
                b'"' => return Some(out),
                b'\\' => {
                    let e = *self.bytes.get(self.pos)?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            self.pos += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                b => {
                    // Re-assemble multi-byte UTF-8 sequences; pushing the
                    // lead byte as a char would mangle non-ASCII text.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let seq = self.bytes.get(start..start + len)?;
                    out.push_str(std::str::from_utf8(seq).ok()?);
                    self.pos = start + len;
                }
            }
        }
    }

    /// A number, or one of the quoted non-finite markers.
    fn number(&mut self) -> Option<f64> {
        if self.peek() == Some(b'"') {
            return parse_f64(&self.string()?);
        }
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    /// An unsigned integer, parsed exactly (the `f64` path would lose
    /// precision above 2^53 — counters are full-range `u64`).
    fn integer(&mut self) -> Option<u64> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    /// Visit each element of an array, with elements parsed by `f`.
    fn array(&mut self, mut f: impl FnMut(&mut Self) -> Option<()>) -> Option<()> {
        self.eat(b'[')?;
        if self.peek() == Some(b']') {
            return self.eat(b']');
        }
        loop {
            f(self)?;
            match self.peek()? {
                b',' => self.eat(b',')?,
                b']' => return self.eat(b']'),
                _ => return None,
            }
        }
    }

    /// Visit each `"key": value` pair of an object, with `value` parsed by
    /// `f`.
    fn object(&mut self, mut f: impl FnMut(&mut Self, String) -> Option<()>) -> Option<()> {
        self.eat(b'{')?;
        if self.peek() == Some(b'}') {
            return self.eat(b'}');
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            f(self, key)?;
            match self.peek()? {
                b',' => self.eat(b',')?,
                b'}' => return self.eat(b'}'),
                _ => return None,
            }
        }
    }
}

/// A parsed JSON document — the generic face of the crate's hand-rolled
/// reader, for artifacts with their own shapes (Chrome traces, run
/// profiles, bench snapshots) that the fixed [`from_json`] schema cannot
/// cover. Numbers are `f64`; exact-`u64` consumers should stay under
/// 2^53 or parse their own fields.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (or a quoted non-finite marker: `"inf"`, `"-inf"`, `"nan"`
    /// as written by the crate's own exporters).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, keys sorted.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parse a complete JSON document. Returns `None` on malformed input
    /// or trailing garbage.
    pub fn parse(text: &str) -> Option<JsonValue> {
        let mut r = JsonReader::new(text);
        let v = r.value()?;
        r.skip_ws();
        if r.pos == r.bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    /// Member `key` of an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value; also decodes the quoted non-finite markers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            JsonValue::Str(s) => match s.as_str() {
                "inf" | "+inf" | "-inf" | "nan" => parse_f64(s),
                _ => None,
            },
            _ => None,
        }
    }

    /// The value as an unsigned integer (exact only below 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object members.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

impl JsonReader<'_> {
    /// Match the exact keyword `kw` at the cursor.
    fn literal(&mut self, kw: &str) -> Option<()> {
        self.skip_ws();
        let end = self.pos + kw.len();
        if self.bytes.get(self.pos..end) == Some(kw.as_bytes()) {
            self.pos = end;
            Some(())
        } else {
            None
        }
    }

    /// Parse any JSON value into a [`JsonValue`] tree.
    fn value(&mut self) -> Option<JsonValue> {
        match self.peek()? {
            b'{' => {
                let mut m = BTreeMap::new();
                self.object(|r, key| {
                    m.insert(key, r.value()?);
                    Some(())
                })?;
                Some(JsonValue::Obj(m))
            }
            b'[' => {
                let mut v = Vec::new();
                self.array(|r| {
                    v.push(r.value()?);
                    Some(())
                })?;
                Some(JsonValue::Arr(v))
            }
            b'"' => Some(JsonValue::Str(self.string()?)),
            b't' => {
                self.literal("true")?;
                Some(JsonValue::Bool(true))
            }
            b'f' => {
                self.literal("false")?;
                Some(JsonValue::Bool(false))
            }
            b'n' => {
                self.literal("null")?;
                Some(JsonValue::Null)
            }
            _ => Some(JsonValue::Num(self.number()?)),
        }
    }
}

/// Parse JSON produced by [`to_json`] back into a [`Snapshot`]. Returns
/// `None` on malformed input.
pub fn from_json(text: &str) -> Option<Snapshot> {
    let mut snap = Snapshot::default();
    let mut r = JsonReader::new(text);
    r.object(|r, section| match section.as_str() {
        "counters" => r.object(|r, name| {
            let v = r.integer()?;
            snap.counters.insert(name, v);
            Some(())
        }),
        "gauges" => r.object(|r, name| {
            let v = r.number()?;
            snap.gauges.insert(name, v);
            Some(())
        }),
        "histograms" => r.object(|r, name| {
            let mut h = HistogramSnapshot::default();
            r.object(|r, field| {
                match field.as_str() {
                    "count" => h.count = r.integer()?,
                    "sum" => h.sum = r.number()?,
                    "max" => h.max = r.number()?,
                    "p50" => h.p50 = r.number()?,
                    "p95" => h.p95 = r.number()?,
                    "p99" => h.p99 = r.number()?,
                    _ => return None,
                }
                Some(())
            })?;
            snap.histograms.insert(name, h);
            Some(())
        }),
        "events" => r.array(|r| {
            let mut ev = TelemetryEvent {
                t_s: 0.0,
                kind: String::new(),
                detail: String::new(),
            };
            r.object(|r, field| {
                match field.as_str() {
                    "t_s" => ev.t_s = r.number()?,
                    "kind" => ev.kind = r.string()?,
                    "detail" => ev.detail = r.string()?,
                    _ => return None,
                }
                Some(())
            })?;
            snap.events.push(ev);
            Some(())
        }),
        "events_dropped" => {
            snap.events_dropped = r.integer()?;
            Some(())
        }
        _ => None,
    })?;
    Some(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.counter("aequus_uss_records_ingested_total").add(42);
        r.counter("aequus_fcs_queries_total").add(7);
        r.gauge("aequus_tracer_active").set(3.0);
        let h = r.histogram("aequus_fcs_refresh_full_s");
        h.record(0.5);
        h.record(1.5);
        h.record(4.0);
        // An overflowing histogram exercises the inf paths.
        r.histogram("aequus_overflow_s").record(1e12);
        r.snapshot()
    }

    #[test]
    fn prometheus_round_trips() {
        let snap = sample_snapshot();
        let text = to_prometheus(&snap);
        assert!(text.contains("# TYPE aequus_fcs_queries_total counter"));
        assert!(text.contains("aequus_fcs_refresh_full_s{quantile=\"0.99\"}"));
        assert!(text.contains("aequus_overflow_s{quantile=\"0.5\"} inf"));
        let back = from_prometheus(&text).expect("parse own output");
        assert_eq!(back, snap);
    }

    #[test]
    fn labeled_series_round_trip_with_hostile_values() {
        let r = Registry::new();
        // User/site names carrying every character the text format must
        // escape — backslash, double quote, newline — plus a raw space.
        let evil = "a\\b\"c\nd e";
        r.counter(&series_name(
            "aequus_slo_alert_transitions_total",
            &[("rule", &format!("fairness:{evil}")), ("to", "firing")],
        ))
        .add(3);
        r.counter("aequus_slo_alert_transitions_total").add(9);
        r.gauge(&series_name(
            "aequus_health_link_staleness_p99_s",
            &[("from", "site 0"), ("to", evil), ("depth", "2")],
        ))
        .set(12.5);
        let snap = r.snapshot();
        let text = to_prometheus(&snap);
        // One TYPE comment per base name even with labeled + plain series.
        assert_eq!(
            text.matches("# TYPE aequus_slo_alert_transitions_total counter")
                .count(),
            1
        );
        // The hostile value is escaped on the wire, never raw.
        assert!(text.contains("to=\"a\\\\b\\\"c\\nd e\""));
        assert!(!text.contains("a\\b\"c\nd"));
        let back = from_prometheus(&text).expect("parse own labeled output");
        assert_eq!(back, snap);
        // JSON round-trips the same keys via its own escaping.
        assert_eq!(from_json(&to_json(&snap)).unwrap(), snap);
    }

    #[test]
    fn series_name_escapes_and_orders_labels() {
        assert_eq!(series_name("base", &[]), "base");
        assert_eq!(
            series_name("base", &[("a", "x"), ("b", "y\"z")]),
            "base{a=\"x\",b=\"y\\\"z\"}"
        );
        assert_eq!(escape_label_value("p\\q\"r\ns"), "p\\\\q\\\"r\\ns");
    }

    #[test]
    fn split_sample_respects_quoted_spaces() {
        assert_eq!(split_sample("m{u=\"a b\"} 3"), Some(("m{u=\"a b\"}", "3")));
        assert_eq!(
            split_sample("m{u=\"a\\\"} b\"} 4"),
            Some(("m{u=\"a\\\"} b\"}", "4")),
            "escaped quote inside the value does not close the section"
        );
        assert_eq!(split_sample("plain 7"), Some(("plain", "7")));
        assert!(split_sample("m{u=\"open 3").is_none());
        assert!(
            split_sample("m{u=\"v\"}").is_none(),
            "no value after labels"
        );
    }

    #[test]
    fn json_round_trips() {
        let snap = sample_snapshot();
        let json = to_json(&snap);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"p99\":\"inf\""));
        let back = from_json(&json).expect("parse own output");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::default();
        assert_eq!(from_prometheus(&to_prometheus(&snap)).unwrap(), snap);
        assert_eq!(from_json(&to_json(&snap)).unwrap(), snap);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_prometheus("garbage with no type\n").is_none());
        assert!(from_json("{\"counters\":").is_none());
        assert!(from_json("not json").is_none());
    }

    #[test]
    fn json_round_trips_events() {
        let mut snap = sample_snapshot();
        snap.events.push(TelemetryEvent {
            t_s: 12.5,
            kind: "uss.gossip_merge".to_string(),
            detail: "peer 3, \"seq\" 7\nsecond line".to_string(),
        });
        snap.events.push(TelemetryEvent {
            t_s: -1.0,
            kind: "pds.policy_update".to_string(),
            detail: String::new(),
        });
        snap.events_dropped = 9;
        let json = to_json(&snap);
        assert!(json.contains("\"events_dropped\":9"));
        let back = from_json(&json).expect("events round-trip");
        assert_eq!(back, snap);
        // Prometheus deliberately omits events.
        let prom_back = from_prometheus(&to_prometheus(&snap)).unwrap();
        assert!(prom_back.events.is_empty());
        assert_eq!(prom_back.counters, snap.counters);
    }

    #[test]
    fn generic_json_value_parses_arbitrary_documents() {
        let v = JsonValue::parse(
            "{\"a\":[1,2.5,\"x\"],\"b\":{\"c\":true,\"d\":null},\"e\":-3,\"inf\":\"inf\"}",
        )
        .expect("valid document");
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_str(),
            Some("x")
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("e").unwrap().as_f64(), Some(-3.0));
        assert_eq!(v.get("e").unwrap().as_u64(), None, "negative is not u64");
        assert_eq!(v.get("inf").unwrap().as_f64(), Some(f64::INFINITY));
        assert!(JsonValue::parse("{\"a\":1} trailing").is_none());
        assert!(JsonValue::parse("{\"a\":tru}").is_none());
        assert!(JsonValue::parse("[1,]").is_none());
    }

    #[test]
    fn generic_json_value_reads_snapshot_export() {
        let snap = sample_snapshot();
        let v = JsonValue::parse(&to_json(&snap)).expect("snapshot export is valid JSON");
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("aequus_fcs_queries_total")
                .unwrap()
                .as_u64(),
            Some(7)
        );
        assert!(v.get("events").unwrap().as_array().is_some());
    }

    #[test]
    fn json_escapes_special_keys() {
        let r = Registry::new();
        r.counter("weird\"name\\with\nstuff").add(1);
        let snap = r.snapshot();
        let back = from_json(&to_json(&snap)).expect("escaped key round-trips");
        assert_eq!(back, snap);
    }
}
