//! The flight recorder: anomaly detection plus a JSONL dump of the recent
//! past.
//!
//! Three anomalies matter operationally for a fairshare deployment (they are
//! the failure modes the EU DataGrid operations report attributes most
//! downtime to): **starvation** — a user stays below a fraction of their
//! target share for longer than a configurable window; **degradation** — the
//! stale-data policy suppressed remote usage (a site is flying on local data
//! only); **divergence** — the cross-site usage views drift apart beyond a
//! threshold. When any of these fires, the recorder snapshots what the
//! telemetry domain retains — recent events, the span store, captured
//! explanations — into a self-contained JSONL flight record, one JSON object
//! per line, suitable for appending to a file and for offline analysis.

use crate::provenance::ProvenanceRecord;
use crate::span::SpanRecord;
use crate::{Telemetry, TelemetryEvent};
use std::collections::BTreeMap;

/// Detection thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnomalyConfig {
    /// A user below `starvation_frac · target_share` of the observed share
    /// for longer than this window counts as starved.
    pub starvation_window_s: f64,
    /// Fraction of the target share under which a user counts as starved.
    pub starvation_frac: f64,
    /// Usage-view divergence above this triggers a dump.
    pub divergence_threshold: f64,
    /// An identical SLO alert transition (same rule, same transition kind)
    /// within this window is deduplicated — a sustained breach flapping
    /// through pending/firing produces one flight record per window, not
    /// one per flap.
    pub alert_dedup_window_s: f64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        Self {
            starvation_window_s: 3600.0,
            starvation_frac: 0.25,
            divergence_threshold: 0.25,
            alert_dedup_window_s: 600.0,
        }
    }
}

/// A detected anomaly.
#[derive(Clone, Debug, PartialEq)]
pub struct Anomaly {
    /// Domain time the anomaly was confirmed at.
    pub t_s: f64,
    /// `"starvation"`, `"degradation"`, or `"divergence"`.
    pub kind: &'static str,
    /// Human-readable description.
    pub detail: String,
}

/// Stateful anomaly detector. Feed it observations each sampling tick; it
/// returns the anomalies that *newly* fired (edge-triggered, so a persistent
/// condition produces one anomaly, not one per tick).
#[derive(Debug, Default)]
pub struct FlightRecorder {
    cfg: AnomalyConfig,
    /// user → time the share first dropped below the starvation line.
    below_since: BTreeMap<String, f64>,
    /// Users already reported as starved (until they recover).
    starved: BTreeMap<String, bool>,
    degraded: bool,
    diverged: bool,
    /// (rule, transition) → last time a flight record was emitted for it.
    alert_last: BTreeMap<(String, String), f64>,
}

impl FlightRecorder {
    /// Create a recorder with the given thresholds.
    pub fn new(cfg: AnomalyConfig) -> Self {
        Self {
            cfg,
            ..Self::default()
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &AnomalyConfig {
        &self.cfg
    }

    /// Observe one user's achieved share vs. their policy target at `now_s`.
    /// Returns a starvation anomaly when the user has been below the line
    /// for longer than the window (once per episode).
    pub fn observe_user_share(
        &mut self,
        user: &str,
        achieved_share: f64,
        target_share: f64,
        now_s: f64,
    ) -> Option<Anomaly> {
        let line = self.cfg.starvation_frac * target_share;
        if target_share <= 0.0 || achieved_share >= line {
            self.below_since.remove(user);
            self.starved.remove(user);
            return None;
        }
        let since = *self.below_since.entry(user.to_string()).or_insert(now_s);
        if now_s - since < self.cfg.starvation_window_s || self.starved.contains_key(user) {
            return None;
        }
        self.starved.insert(user.to_string(), true);
        Some(Anomaly {
            t_s: now_s,
            kind: "starvation",
            detail: format!(
                "user {user} at share {achieved_share:.4} < {line:.4} \
                 ({:.0}% of target {target_share:.4}) since t={since:.0}s",
                100.0 * self.cfg.starvation_frac
            ),
        })
    }

    /// Observe whether the stale-data policy currently suppresses remote
    /// usage. Fires on the false→true edge.
    pub fn observe_degradation(&mut self, suppressed: bool, now_s: f64) -> Option<Anomaly> {
        let fired = suppressed && !self.degraded;
        self.degraded = suppressed;
        fired.then(|| Anomaly {
            t_s: now_s,
            kind: "degradation",
            detail: "stale policy degraded to local-only weighting".to_string(),
        })
    }

    /// Observe the current cross-site usage-view divergence. Fires on the
    /// rising edge through the threshold.
    pub fn observe_divergence(&mut self, divergence: f64, now_s: f64) -> Option<Anomaly> {
        let above = divergence > self.cfg.divergence_threshold;
        let fired = above && !self.diverged;
        self.diverged = above;
        fired.then(|| Anomaly {
            t_s: now_s,
            kind: "divergence",
            detail: format!(
                "usage-view divergence {divergence:.4} > {:.4}",
                self.cfg.divergence_threshold
            ),
        })
    }

    /// Observe one SLO alert lifecycle transition (from the
    /// [`crate::slo::SloEngine`]). Returns an anomaly to dump unless an
    /// identical (rule, transition) record was emitted inside the dedup
    /// window.
    pub fn observe_alert(
        &mut self,
        rule: &str,
        transition: &str,
        value: f64,
        now_s: f64,
    ) -> Option<Anomaly> {
        let key = (rule.to_string(), transition.to_string());
        if let Some(&last) = self.alert_last.get(&key) {
            if now_s - last < self.cfg.alert_dedup_window_s {
                return None;
            }
        }
        self.alert_last.insert(key, now_s);
        Some(Anomaly {
            t_s: now_s,
            kind: "slo_alert",
            detail: format!("rule {rule} {transition} (value {value:.4})"),
        })
    }
}

fn esc(s: &str) -> String {
    crate::export::json_escape(s)
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else if v.is_nan() {
        "\"nan\"".to_string()
    } else if v > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// Render one anomaly plus everything the telemetry domain retains — recent
/// events, spans, captured explanations — as a JSONL flight record (one JSON
/// object per line; the first line is the anomaly itself).
pub fn dump_jsonl(anomaly: &Anomaly, telemetry: &Telemetry) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"type\":\"anomaly\",\"t_s\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}\n",
        num(anomaly.t_s),
        esc(anomaly.kind),
        esc(&anomaly.detail)
    ));
    for ev in telemetry.recent_events() {
        out.push_str(&event_line(&ev));
    }
    for span in telemetry.spans() {
        out.push_str(&span_line(&span));
    }
    for rec in telemetry.provenance_records() {
        out.push_str(&provenance_line(&rec));
    }
    out
}

fn event_line(ev: &TelemetryEvent) -> String {
    format!(
        "{{\"type\":\"event\",\"t_s\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}\n",
        num(ev.t_s),
        esc(&ev.kind),
        esc(&ev.detail)
    )
}

fn span_line(s: &SpanRecord) -> String {
    format!(
        "{{\"type\":\"span\",\"trace_id\":{},\"span_id\":{},\"parent_span\":{},\
         \"name\":\"{}\",\"site\":{},\"t_s\":{},\"detail\":\"{}\"}}\n",
        s.trace_id,
        s.span_id,
        s.parent_span,
        esc(&s.name),
        s.site,
        num(s.t_s),
        esc(&s.detail)
    )
}

fn provenance_line(r: &ProvenanceRecord) -> String {
    // `json` is already rendered JSON: embedded verbatim, not escaped.
    format!(
        "{{\"type\":\"explanation\",\"t_s\":{},\"user\":\"{}\",\"trace_id\":{},\
         \"factor\":{},\"explanation\":{}}}\n",
        num(r.t_s),
        esc(&r.user),
        r.trace_id,
        num(r.factor),
        r.json
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AnomalyConfig {
        AnomalyConfig {
            starvation_window_s: 100.0,
            starvation_frac: 0.5,
            divergence_threshold: 0.2,
            alert_dedup_window_s: 300.0,
        }
    }

    #[test]
    fn alert_records_dedup_per_window() {
        let mut fr = FlightRecorder::new(cfg());
        let a = fr
            .observe_alert("staleness:1->0", "firing", 212.5, 540.0)
            .expect("first firing records");
        assert_eq!(a.kind, "slo_alert");
        assert!(a.detail.contains("staleness:1->0 firing"));
        // Same transition inside the window: suppressed.
        assert!(fr
            .observe_alert("staleness:1->0", "firing", 250.0, 700.0)
            .is_none());
        // A different transition of the same rule is independent.
        assert!(fr
            .observe_alert("staleness:1->0", "resolved", 10.0, 720.0)
            .is_some());
        // And so is another rule.
        assert!(fr
            .observe_alert("staleness:2->0", "firing", 180.0, 720.0)
            .is_some());
        // Past the window the same transition records again.
        assert!(fr
            .observe_alert("staleness:1->0", "firing", 300.0, 900.0)
            .is_some());
    }

    #[test]
    fn starvation_needs_the_full_window() {
        let mut fr = FlightRecorder::new(cfg());
        // Target 0.4, line at 0.2; user sits at 0.1.
        assert!(fr.observe_user_share("u", 0.1, 0.4, 0.0).is_none());
        assert!(fr.observe_user_share("u", 0.1, 0.4, 50.0).is_none());
        let a = fr
            .observe_user_share("u", 0.1, 0.4, 150.0)
            .expect("window elapsed");
        assert_eq!(a.kind, "starvation");
        assert!(a.detail.contains("user u"));
        // Edge-triggered: the persisting condition stays silent…
        assert!(fr.observe_user_share("u", 0.1, 0.4, 200.0).is_none());
        // …until recovery resets the episode.
        assert!(fr.observe_user_share("u", 0.3, 0.4, 250.0).is_none());
        assert!(fr.observe_user_share("u", 0.1, 0.4, 260.0).is_none());
        assert!(fr.observe_user_share("u", 0.1, 0.4, 400.0).is_some());
    }

    #[test]
    fn recovery_inside_the_window_resets() {
        let mut fr = FlightRecorder::new(cfg());
        fr.observe_user_share("u", 0.1, 0.4, 0.0);
        fr.observe_user_share("u", 0.3, 0.4, 60.0); // recovered
        assert!(
            fr.observe_user_share("u", 0.1, 0.4, 110.0).is_none(),
            "clock restarted at the second drop"
        );
    }

    #[test]
    fn zero_target_never_starves() {
        let mut fr = FlightRecorder::new(cfg());
        assert!(fr.observe_user_share("u", 0.0, 0.0, 0.0).is_none());
        assert!(fr.observe_user_share("u", 0.0, 0.0, 1e9).is_none());
    }

    #[test]
    fn degradation_and_divergence_are_edge_triggered() {
        let mut fr = FlightRecorder::new(cfg());
        assert!(fr.observe_degradation(false, 0.0).is_none());
        assert!(fr.observe_degradation(true, 1.0).is_some());
        assert!(fr.observe_degradation(true, 2.0).is_none());
        assert!(fr.observe_degradation(false, 3.0).is_none());
        assert!(fr.observe_degradation(true, 4.0).is_some());

        assert!(fr.observe_divergence(0.1, 0.0).is_none());
        assert!(fr.observe_divergence(0.3, 1.0).is_some());
        assert!(fr.observe_divergence(0.35, 2.0).is_none());
        assert!(fr.observe_divergence(0.05, 3.0).is_none());
    }

    #[test]
    fn dump_contains_all_sections() {
        let t = Telemetry::with_full_config(
            crate::tracer::TracerConfig::default(),
            16,
            crate::span::SpanConfig::full(0),
        );
        t.event(1.0, "uss.gossip_merge", || "cells=3".to_string());
        let ctx = t
            .start_trace("rms.report", 0.5, || "job 7".to_string())
            .unwrap();
        t.child_span(Some(ctx), "uss.ingest", 1.5, String::new);
        t.record_provenance(2.0, "alice", ctx.trace_id, 0.75, || "{\"k\":1}".to_string());
        let a = Anomaly {
            t_s: 3.0,
            kind: "divergence",
            detail: "test \"quoted\"".to_string(),
        };
        let dump = dump_jsonl(&a, &t);
        let lines: Vec<&str> = dump.lines().collect();
        assert!(lines[0].contains("\"type\":\"anomaly\""));
        assert!(lines[0].contains("\\\"quoted\\\""));
        assert!(dump.contains("\"type\":\"event\""));
        assert!(dump.contains("\"type\":\"span\""));
        assert!(dump.contains("\"name\":\"uss.ingest\""));
        assert!(dump.contains("\"type\":\"explanation\""));
        assert!(dump.contains("\"explanation\":{\"k\":1}"));
        assert_eq!(
            lines.len(),
            5,
            "anomaly + 1 event + 2 spans + 1 explanation"
        );
    }
}
