//! Grid-wide telemetry for the Aequus stack.
//!
//! One [`Telemetry`] handle is threaded through every service of a site
//! (USS, UMS, FCS, IRS, PDS, libaequus, the RMS scheduler) and through the
//! sim engine. It bundles three facilities:
//!
//! * a lock-free **metric registry** ([`Registry`]) of named counters,
//!   gauges, and log-bucketed histograms, snapshot-able at any time and
//!   exportable as Prometheus text or JSON ([`export`]);
//! * a bounded **event ring** ([`EventRing`]) holding the last N notable
//!   events (cache evictions, forced full rebuilds, gossip merges);
//! * the **pipeline-delay tracer** ([`tracer::PipelineTracer`]) measuring
//!   the empirical §IV-A-2 usage-to-fairshare delay per stage;
//! * **causal spans** ([`span`]) propagating a [`TraceCtx`] through the
//!   whole report→gossip→refresh→query pipeline, across sites, into a
//!   per-site bounded [`span::SpanStore`];
//! * **decision provenance** ([`provenance`]): type-erased, replayable
//!   explanations of served priorities;
//! * the **flight recorder** ([`flight`]): anomaly detection plus a JSONL
//!   dump of recent events, spans, and explanations;
//! * **continuous profiling** ([`profile`]): per-shard stage accounting
//!   with deterministic counters and wall-clock dual clocks, exported as a
//!   Chrome trace and a folded-stacks profile;
//! * the **SLO engine** ([`slo`]): streaming fairness-health rules
//!   evaluated on sim-time windows with multi-window burn-rate alerting
//!   and a deterministic pending → firing → resolved lifecycle.
//!
//! A disabled handle ([`Telemetry::disabled`]) reduces every operation to
//! an `Option` check — no allocation, no clock reads, no locks — so
//! instrumentation can stay unconditionally in place on hot paths. The
//! span layer adds a second tier: *enabled but unsampled*
//! ([`SpanConfig::sample_every`] = 0), where trace starts are a branch and
//! every downstream stage short-circuits on a `None` context.

#![warn(missing_docs)]

mod events;
pub mod export;
pub mod flight;
mod hist;
pub mod profile;
pub mod provenance;
mod registry;
pub mod slo;
pub mod span;
pub mod tracer;

pub use events::{EventRing, TelemetryEvent};
pub use hist::{Histogram, HistogramSnapshot, SpanTimer};
pub use profile::{ProfileMode, RunProfile, ShardProfile, ShardProfiler, StageStats};
pub use registry::{Counter, Gauge, Registry, Snapshot};
pub use slo::{AlertEvent, AlertState, SloConfig, SloEngine, SloRule};
pub use span::{SpanConfig, SpanRecord, SpanTree, TraceCtx};

use provenance::{ProvenanceRecord, ProvenanceStore};
use span::SpanStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tracer::{PipelineTracer, TracerConfig};

#[derive(Debug)]
struct Inner {
    registry: Registry,
    events: EventRing,
    tracer: Mutex<PipelineTracer>,
    /// Number of in-flight traces; lets the per-query `trace_*` fast paths
    /// skip the tracer mutex entirely while nothing is being traced.
    tracer_active: AtomicU64,
    span_cfg: SpanConfig,
    spans: Mutex<SpanStore>,
    /// Trace-root candidates seen (drives `sample_every` sampling).
    span_seen: AtomicU64,
    provenance: Mutex<ProvenanceStore>,
    /// Pre-registered span-layer stat handles (ride into snapshots).
    c_traces: Counter,
    c_spans: Counter,
    c_provenance: Counter,
}

/// The cheap, cloneable telemetry handle. See the crate docs.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A disabled handle: every operation is a no-op behind one branch.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle with default tracer sampling and event capacity.
    pub fn enabled() -> Self {
        Self::with_config(TracerConfig::default(), 256)
    }

    /// An enabled handle with explicit tracer configuration and event-ring
    /// capacity; the span layer stays enabled-but-unsampled
    /// ([`SpanConfig::default`]).
    pub fn with_config(cfg: TracerConfig, event_capacity: usize) -> Self {
        Self::with_full_config(cfg, event_capacity, SpanConfig::default())
    }

    /// An enabled handle with explicit tracer, event-ring, *and* span-layer
    /// configuration — the constructor for full causal capture
    /// ([`SpanConfig::full`]).
    pub fn with_full_config(cfg: TracerConfig, event_capacity: usize, spans: SpanConfig) -> Self {
        let registry = Registry::new();
        let tracer = PipelineTracer::new(cfg, &registry);
        let c_traces = registry.counter("aequus_spans_traces_total");
        let c_spans = registry.counter("aequus_spans_recorded_total");
        let c_provenance = registry.counter("aequus_provenance_captured_total");
        Self {
            inner: Some(Arc::new(Inner {
                registry,
                events: EventRing::new(event_capacity),
                tracer: Mutex::new(tracer),
                tracer_active: AtomicU64::new(0),
                spans: Mutex::new(SpanStore::new(spans.site, spans.store_cap)),
                span_cfg: spans,
                span_seen: AtomicU64::new(0),
                provenance: Mutex::new(ProvenanceStore::new(spans.store_cap)),
                c_traces,
                c_spans,
                c_provenance,
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Get or create the counter `name` (a disabled handle on a disabled
    /// `Telemetry`).
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .as_ref()
            .map_or_else(Counter::default, |i| i.registry.counter(name))
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .as_ref()
            .map_or_else(Gauge::default, |i| i.registry.gauge(name))
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .as_ref()
            .map_or_else(Histogram::default, |i| i.registry.histogram(name))
    }

    /// Record a notable event. `detail` is only invoked when enabled, so
    /// callers pay no formatting cost on disabled handles. `t_s` is the
    /// domain time, or `-1.0` where the call site has no clock.
    pub fn event(&self, t_s: f64, kind: &'static str, detail: impl FnOnce() -> String) {
        if let Some(i) = &self.inner {
            i.events.push(TelemetryEvent {
                t_s,
                kind: kind.to_string(),
                detail: detail(),
            });
        }
    }

    /// The retained events, oldest first (empty when disabled).
    pub fn recent_events(&self) -> Vec<TelemetryEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.events.recent())
    }

    /// Events evicted from the ring so far.
    pub fn events_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.events.dropped())
    }

    /// Snapshot every registered metric plus the retained event ring;
    /// `None` when disabled.
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.inner.as_ref().map(|i| {
            let mut snap = i.registry.snapshot();
            snap.events = i.events.recent();
            snap.events_dropped = i.events.dropped();
            snap
        })
    }

    fn with_tracer(&self, f: impl FnOnce(&mut PipelineTracer)) {
        if let Some(i) = &self.inner {
            let mut tracer = i.tracer.lock().expect("tracer poisoned");
            f(&mut tracer);
            i.tracer_active
                .store(tracer.active_count() as u64, Ordering::Relaxed);
        }
    }

    /// Whether any trace is currently in flight (always `false` when
    /// disabled). The per-query tracer hooks use this to skip the mutex.
    fn tracer_is_idle(&self) -> bool {
        match &self.inner {
            None => true,
            Some(i) => i.tracer_active.load(Ordering::Relaxed) == 0,
        }
    }

    /// Tracer stage 0: the RMS reported job `job` of `user` at `now_s`.
    pub fn trace_report(&self, job: u64, user: &str, now_s: f64) {
        self.with_tracer(|t| {
            t.on_report(job, user, now_s);
        });
    }

    /// Tracer stage I: job `job`'s record was ingested by the USS; its
    /// charge ends in histogram slot `end_slot`.
    pub fn trace_ingest(&self, job: u64, end_slot: u64, now_s: f64) {
        if self.tracer_is_idle() {
            return;
        }
        self.with_tracer(|t| t.on_ingest(job, end_slot, now_s));
    }

    /// Tracer stage II-a: the USS published a summary for `users` while in
    /// slot `current_slot`.
    pub fn trace_publish(&self, users: &[&str], current_slot: u64, now_s: f64) {
        if self.tracer_is_idle() {
            return;
        }
        self.with_tracer(|t| t.on_publish(users, current_slot, now_s));
    }

    /// Tracer stage II-b: a UMS refresh actually ran at `now_s`.
    pub fn trace_ums_refresh(&self, now_s: f64) {
        if self.tracer_is_idle() {
            return;
        }
        self.with_tracer(|t| t.on_ums_refresh(now_s));
    }

    /// Tracer stage II-c: an FCS refresh actually ran at `now_s`.
    pub fn trace_fcs_refresh(&self, now_s: f64) {
        if self.tracer_is_idle() {
            return;
        }
        self.with_tracer(|t| t.on_fcs_refresh(now_s));
    }

    /// Tracer stage III: a libaequus query for `user` was answered with a
    /// value fetched from the FCS at `served_fetch_s`.
    pub fn trace_lib_query(&self, user: &str, served_fetch_s: f64, now_s: f64) {
        if self.tracer_is_idle() {
            return;
        }
        self.with_tracer(|t| t.on_lib_query(user, served_fetch_s, now_s));
    }

    /// Number of traces currently in flight.
    pub fn traces_active(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.tracer_active.load(Ordering::Relaxed))
    }

    // --- Causal spans (span layer) ---

    /// Whether the span layer ever samples (false when disabled or
    /// enabled-but-unsampled).
    pub fn span_sampling_enabled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.span_cfg.sample_every > 0)
    }

    /// Maybe start a causal trace: if the span layer samples this root, a
    /// root span is recorded and its context returned for propagation.
    /// `detail` is only rendered for sampled roots. Unsampled or disabled
    /// handles return `None` after at most one counter bump.
    pub fn start_trace(
        &self,
        name: &'static str,
        t_s: f64,
        detail: impl FnOnce() -> String,
    ) -> Option<TraceCtx> {
        let i = self.inner.as_ref()?;
        if i.span_cfg.sample_every == 0 {
            return None;
        }
        let seen = i.span_seen.fetch_add(1, Ordering::Relaxed);
        if seen % i.span_cfg.sample_every != 0 {
            return None;
        }
        let mut store = i.spans.lock().expect("span store poisoned");
        let id = store.alloc_id();
        store.push(SpanRecord {
            trace_id: id,
            span_id: id,
            parent_span: 0,
            name: name.to_string(),
            site: i.span_cfg.site,
            t_s,
            detail: detail(),
        });
        i.c_traces.inc();
        i.c_spans.inc();
        Some(TraceCtx {
            trace_id: id,
            span: id,
        })
    }

    /// Record a span causally linked under `parent` (which may have been
    /// recorded on another site — that is how gossip hops stitch cross-site
    /// trees together). Returns the child context for further propagation;
    /// a `None` parent (unsampled) or a disabled handle is a cheap no-op.
    pub fn child_span(
        &self,
        parent: Option<TraceCtx>,
        name: &'static str,
        t_s: f64,
        detail: impl FnOnce() -> String,
    ) -> Option<TraceCtx> {
        let (i, p) = match (&self.inner, parent) {
            (Some(i), Some(p)) => (i, p),
            _ => return None,
        };
        let mut store = i.spans.lock().expect("span store poisoned");
        let id = store.alloc_id();
        store.push(SpanRecord {
            trace_id: p.trace_id,
            span_id: id,
            parent_span: p.span,
            name: name.to_string(),
            site: i.span_cfg.site,
            t_s,
            detail: detail(),
        });
        i.c_spans.inc();
        Some(TraceCtx {
            trace_id: p.trace_id,
            span: id,
        })
    }

    /// The retained spans of this site's store, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.spans
                .lock()
                .expect("span store poisoned")
                .spans()
                .to_vec()
        })
    }

    /// Spans evicted from the bounded store so far.
    pub fn spans_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            i.spans.lock().expect("span store poisoned").dropped()
        })
    }

    // --- Decision provenance ---

    /// Whether explanation capture is on.
    pub fn provenance_enabled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.span_cfg.capture_provenance)
    }

    /// Capture a served decision. `json` (the pre-rendered `Explanation`
    /// body) is only invoked when capture is on.
    pub fn record_provenance(
        &self,
        t_s: f64,
        user: &str,
        trace_id: u64,
        factor: f64,
        json: impl FnOnce() -> String,
    ) {
        if let Some(i) = &self.inner {
            if !i.span_cfg.capture_provenance {
                return;
            }
            i.provenance
                .lock()
                .expect("provenance store poisoned")
                .push(ProvenanceRecord {
                    t_s,
                    user: user.to_string(),
                    trace_id,
                    factor,
                    json: json(),
                });
            i.c_provenance.inc();
        }
    }

    /// The retained decision records, oldest first.
    pub fn provenance_records(&self) -> Vec<ProvenanceRecord> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.provenance
                .lock()
                .expect("provenance store poisoned")
                .records()
                .to_vec()
        })
    }

    /// The latest captured decision for `user`, if retained.
    pub fn latest_provenance_for(&self, user: &str) -> Option<ProvenanceRecord> {
        self.inner.as_ref().and_then(|i| {
            i.provenance
                .lock()
                .expect("provenance store poisoned")
                .latest_for(user)
                .cloned()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter("c").inc();
        t.gauge("g").set(1.0);
        t.histogram("h").record(1.0);
        t.event(0.0, "x", || unreachable!("detail closure must not run"));
        t.trace_report(1, "u", 0.0);
        t.trace_ingest(1, 0, 1.0);
        assert!(t.snapshot().is_none());
        assert!(t.recent_events().is_empty());
        assert_eq!(t.traces_active(), 0);
    }

    #[test]
    fn enabled_handle_records_and_snapshots() {
        let t = Telemetry::enabled();
        t.counter("aequus_test_total").add(3);
        t.histogram("aequus_test_s").record(0.25);
        t.event(12.0, "test.ev", || "hello".into());
        let snap = t.snapshot().expect("enabled");
        assert_eq!(snap.counters["aequus_test_total"], 3);
        assert_eq!(snap.histograms["aequus_test_s"].count, 1);
        assert_eq!(t.recent_events().len(), 1);
        assert_eq!(t.recent_events()[0].kind, "test.ev");
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::enabled();
        let u = t.clone();
        t.counter("shared").inc();
        u.counter("shared").inc();
        assert_eq!(t.snapshot().unwrap().counters["shared"], 2);
    }

    #[test]
    fn trace_chain_through_the_facade() {
        let t = Telemetry::with_config(
            TracerConfig {
                sample_every: 1,
                max_active: 8,
            },
            16,
        );
        t.trace_report(7, "alice", 100.0);
        assert_eq!(t.traces_active(), 1);
        t.trace_ingest(7, 1, 110.0);
        t.trace_ums_refresh(160.0);
        t.trace_fcs_refresh(170.0);
        t.trace_lib_query("alice", 175.0, 180.0);
        t.trace_publish(&["alice"], 2, 190.0);
        assert_eq!(t.traces_active(), 0, "finished trace retired");
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.histograms["aequus_tracer_end_to_end_s"].count, 1);
        assert_eq!(snap.histograms["aequus_tracer_end_to_end_s"].max, 80.0);
        assert_eq!(snap.counters["aequus_tracer_completed_total"], 1);
    }

    #[test]
    fn span_layer_disabled_and_unsampled_are_inert() {
        let off = Telemetry::disabled();
        assert!(off
            .start_trace("rms.report", 0.0, || unreachable!("no detail when off"))
            .is_none());
        assert!(off.child_span(None, "x", 0.0, || unreachable!()).is_none());
        assert!(off.spans().is_empty());
        assert!(!off.span_sampling_enabled());
        assert!(!off.provenance_enabled());
        off.record_provenance(0.0, "u", 0, 0.5, || unreachable!());

        // Enabled but unsampled (the default): same observable behavior.
        let unsampled = Telemetry::enabled();
        assert!(!unsampled.span_sampling_enabled());
        assert!(unsampled
            .start_trace("rms.report", 0.0, || unreachable!("unsampled"))
            .is_none());
        assert!(unsampled.spans().is_empty());
        assert_eq!(
            unsampled.snapshot().unwrap().counters["aequus_spans_traces_total"],
            0
        );
    }

    #[test]
    fn span_chain_propagates_trace_and_parents() {
        let t = Telemetry::with_full_config(TracerConfig::default(), 16, SpanConfig::full(2));
        let root = t.start_trace("rms.report", 1.0, || "job 9".into()).unwrap();
        assert_eq!(root.trace_id, root.span);
        let ingest = t
            .child_span(Some(root), "uss.ingest", 2.0, String::new)
            .unwrap();
        assert_eq!(ingest.trace_id, root.trace_id);
        assert_ne!(ingest.span, root.span);
        let publish = t
            .child_span(Some(ingest), "uss.publish", 3.0, String::new)
            .unwrap();
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[1].parent_span, root.span);
        assert_eq!(spans[2].parent_span, ingest.span);
        assert_eq!(spans[2].trace_id, root.trace_id);
        assert!(spans.iter().all(|s| s.site == 2));
        let trees = SpanTree::for_trace(&[&spans], root.trace_id);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].depth(), 3);
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.counters["aequus_spans_traces_total"], 1);
        assert_eq!(snap.counters["aequus_spans_recorded_total"], 3);
        let _ = publish;
    }

    #[test]
    fn span_sampling_takes_every_nth_root() {
        let t = Telemetry::with_full_config(
            TracerConfig::default(),
            16,
            SpanConfig {
                sample_every: 4,
                ..SpanConfig::full(0)
            },
        );
        let sampled = (0..16)
            .filter(|_| t.start_trace("r", 0.0, String::new).is_some())
            .count();
        assert_eq!(sampled, 4);
    }

    #[test]
    fn provenance_capture_round_trip() {
        let t = Telemetry::with_full_config(TracerConfig::default(), 16, SpanConfig::full(0));
        assert!(t.provenance_enabled());
        t.record_provenance(5.0, "alice", 42, 0.625, || "{\"x\":2}".to_string());
        t.record_provenance(6.0, "bob", 0, 0.5, || "{}".to_string());
        let recs = t.provenance_records();
        assert_eq!(recs.len(), 2);
        let a = t.latest_provenance_for("alice").unwrap();
        assert_eq!(a.factor, 0.625);
        assert_eq!(a.trace_id, 42);
        assert_eq!(a.json, "{\"x\":2}");
        assert_eq!(
            t.snapshot().unwrap().counters["aequus_provenance_captured_total"],
            2
        );
    }

    #[test]
    fn snapshot_carries_the_event_ring() {
        let t = Telemetry::with_config(TracerConfig::default(), 2);
        t.event(1.0, "a.b", || "one".into());
        t.event(2.0, "c.d", || "two".into());
        t.event(3.0, "e.f", || "three".into());
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.events.len(), 2, "ring capacity respected");
        assert_eq!(snap.events[0].kind, "c.d");
        assert_eq!(snap.events_dropped, 1);
        let back = export::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap, "events survive the JSON round-trip");
    }

    #[test]
    fn idle_fast_path_skips_marking() {
        let t = Telemetry::enabled();
        // No trace in flight: stage marks are cheap no-ops.
        t.trace_ums_refresh(10.0);
        t.trace_lib_query("nobody", 0.0, 10.0);
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.histograms["aequus_tracer_ums_delay_s"].count, 0);
    }
}
