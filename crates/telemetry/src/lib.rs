//! Grid-wide telemetry for the Aequus stack.
//!
//! One [`Telemetry`] handle is threaded through every service of a site
//! (USS, UMS, FCS, IRS, PDS, libaequus, the RMS scheduler) and through the
//! sim engine. It bundles three facilities:
//!
//! * a lock-free **metric registry** ([`Registry`]) of named counters,
//!   gauges, and log-bucketed histograms, snapshot-able at any time and
//!   exportable as Prometheus text or JSON ([`export`]);
//! * a bounded **event ring** ([`EventRing`]) holding the last N notable
//!   events (cache evictions, forced full rebuilds, gossip merges);
//! * the **pipeline-delay tracer** ([`tracer::PipelineTracer`]) measuring
//!   the empirical §IV-A-2 usage-to-fairshare delay per stage.
//!
//! A disabled handle ([`Telemetry::disabled`]) reduces every operation to
//! an `Option` check — no allocation, no clock reads, no locks — so
//! instrumentation can stay unconditionally in place on hot paths.

#![warn(missing_docs)]

mod events;
pub mod export;
mod hist;
mod registry;
pub mod tracer;

pub use events::{EventRing, TelemetryEvent};
pub use hist::{Histogram, HistogramSnapshot, SpanTimer};
pub use registry::{Counter, Gauge, Registry, Snapshot};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tracer::{PipelineTracer, TracerConfig};

#[derive(Debug)]
struct Inner {
    registry: Registry,
    events: EventRing,
    tracer: Mutex<PipelineTracer>,
    /// Number of in-flight traces; lets the per-query `trace_*` fast paths
    /// skip the tracer mutex entirely while nothing is being traced.
    tracer_active: AtomicU64,
}

/// The cheap, cloneable telemetry handle. See the crate docs.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A disabled handle: every operation is a no-op behind one branch.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle with default tracer sampling and event capacity.
    pub fn enabled() -> Self {
        Self::with_config(TracerConfig::default(), 256)
    }

    /// An enabled handle with explicit tracer configuration and event-ring
    /// capacity.
    pub fn with_config(cfg: TracerConfig, event_capacity: usize) -> Self {
        let registry = Registry::new();
        let tracer = PipelineTracer::new(cfg, &registry);
        Self {
            inner: Some(Arc::new(Inner {
                registry,
                events: EventRing::new(event_capacity),
                tracer: Mutex::new(tracer),
                tracer_active: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Get or create the counter `name` (a disabled handle on a disabled
    /// `Telemetry`).
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .as_ref()
            .map_or_else(Counter::default, |i| i.registry.counter(name))
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .as_ref()
            .map_or_else(Gauge::default, |i| i.registry.gauge(name))
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .as_ref()
            .map_or_else(Histogram::default, |i| i.registry.histogram(name))
    }

    /// Record a notable event. `detail` is only invoked when enabled, so
    /// callers pay no formatting cost on disabled handles. `t_s` is the
    /// domain time, or `-1.0` where the call site has no clock.
    pub fn event(&self, t_s: f64, kind: &'static str, detail: impl FnOnce() -> String) {
        if let Some(i) = &self.inner {
            i.events.push(TelemetryEvent {
                t_s,
                kind,
                detail: detail(),
            });
        }
    }

    /// The retained events, oldest first (empty when disabled).
    pub fn recent_events(&self) -> Vec<TelemetryEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.events.recent())
    }

    /// Events evicted from the ring so far.
    pub fn events_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.events.dropped())
    }

    /// Snapshot every registered metric; `None` when disabled.
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.inner.as_ref().map(|i| i.registry.snapshot())
    }

    fn with_tracer(&self, f: impl FnOnce(&mut PipelineTracer)) {
        if let Some(i) = &self.inner {
            let mut tracer = i.tracer.lock().expect("tracer poisoned");
            f(&mut tracer);
            i.tracer_active
                .store(tracer.active_count() as u64, Ordering::Relaxed);
        }
    }

    /// Whether any trace is currently in flight (always `false` when
    /// disabled). The per-query tracer hooks use this to skip the mutex.
    fn tracer_is_idle(&self) -> bool {
        match &self.inner {
            None => true,
            Some(i) => i.tracer_active.load(Ordering::Relaxed) == 0,
        }
    }

    /// Tracer stage 0: the RMS reported job `job` of `user` at `now_s`.
    pub fn trace_report(&self, job: u64, user: &str, now_s: f64) {
        self.with_tracer(|t| {
            t.on_report(job, user, now_s);
        });
    }

    /// Tracer stage I: job `job`'s record was ingested by the USS; its
    /// charge ends in histogram slot `end_slot`.
    pub fn trace_ingest(&self, job: u64, end_slot: u64, now_s: f64) {
        if self.tracer_is_idle() {
            return;
        }
        self.with_tracer(|t| t.on_ingest(job, end_slot, now_s));
    }

    /// Tracer stage II-a: the USS published a summary for `users` while in
    /// slot `current_slot`.
    pub fn trace_publish(&self, users: &[&str], current_slot: u64, now_s: f64) {
        if self.tracer_is_idle() {
            return;
        }
        self.with_tracer(|t| t.on_publish(users, current_slot, now_s));
    }

    /// Tracer stage II-b: a UMS refresh actually ran at `now_s`.
    pub fn trace_ums_refresh(&self, now_s: f64) {
        if self.tracer_is_idle() {
            return;
        }
        self.with_tracer(|t| t.on_ums_refresh(now_s));
    }

    /// Tracer stage II-c: an FCS refresh actually ran at `now_s`.
    pub fn trace_fcs_refresh(&self, now_s: f64) {
        if self.tracer_is_idle() {
            return;
        }
        self.with_tracer(|t| t.on_fcs_refresh(now_s));
    }

    /// Tracer stage III: a libaequus query for `user` was answered with a
    /// value fetched from the FCS at `served_fetch_s`.
    pub fn trace_lib_query(&self, user: &str, served_fetch_s: f64, now_s: f64) {
        if self.tracer_is_idle() {
            return;
        }
        self.with_tracer(|t| t.on_lib_query(user, served_fetch_s, now_s));
    }

    /// Number of traces currently in flight.
    pub fn traces_active(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.tracer_active.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter("c").inc();
        t.gauge("g").set(1.0);
        t.histogram("h").record(1.0);
        t.event(0.0, "x", || unreachable!("detail closure must not run"));
        t.trace_report(1, "u", 0.0);
        t.trace_ingest(1, 0, 1.0);
        assert!(t.snapshot().is_none());
        assert!(t.recent_events().is_empty());
        assert_eq!(t.traces_active(), 0);
    }

    #[test]
    fn enabled_handle_records_and_snapshots() {
        let t = Telemetry::enabled();
        t.counter("aequus_test_total").add(3);
        t.histogram("aequus_test_s").record(0.25);
        t.event(12.0, "test.ev", || "hello".into());
        let snap = t.snapshot().expect("enabled");
        assert_eq!(snap.counters["aequus_test_total"], 3);
        assert_eq!(snap.histograms["aequus_test_s"].count, 1);
        assert_eq!(t.recent_events().len(), 1);
        assert_eq!(t.recent_events()[0].kind, "test.ev");
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::enabled();
        let u = t.clone();
        t.counter("shared").inc();
        u.counter("shared").inc();
        assert_eq!(t.snapshot().unwrap().counters["shared"], 2);
    }

    #[test]
    fn trace_chain_through_the_facade() {
        let t = Telemetry::with_config(
            TracerConfig {
                sample_every: 1,
                max_active: 8,
            },
            16,
        );
        t.trace_report(7, "alice", 100.0);
        assert_eq!(t.traces_active(), 1);
        t.trace_ingest(7, 1, 110.0);
        t.trace_ums_refresh(160.0);
        t.trace_fcs_refresh(170.0);
        t.trace_lib_query("alice", 175.0, 180.0);
        t.trace_publish(&["alice"], 2, 190.0);
        assert_eq!(t.traces_active(), 0, "finished trace retired");
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.histograms["aequus_tracer_end_to_end_s"].count, 1);
        assert_eq!(snap.histograms["aequus_tracer_end_to_end_s"].max, 80.0);
        assert_eq!(snap.counters["aequus_tracer_completed_total"], 1);
    }

    #[test]
    fn idle_fast_path_skips_marking() {
        let t = Telemetry::enabled();
        // No trace in flight: stage marks are cheap no-ops.
        t.trace_ums_refresh(10.0);
        t.trace_lib_query("nobody", 0.0, 10.0);
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.histograms["aequus_tracer_ums_delay_s"].count, 0);
    }
}
