//! The empirical pipeline-delay tracer (§IV-A-2).
//!
//! The paper enumerates the delay chain from job completion to fairshare
//! impact: (I) RMS→USS reporting delay, (II) USS/UMS/FCS cache time,
//! (III) libaequus cache time, (IV) RMS re-prioritization interval. The
//! configured values are in `ServiceTimings`; this tracer measures what the
//! pipeline *actually* does: a configurable sample of usage records is
//! tagged when the RMS reports them, and each stage marks, in simulated
//! time, when the record's effect first becomes visible there. Per-stage
//! deltas and the end-to-end delay land in registry histograms
//! (`aequus_tracer_*`), so a run's empirical delay distribution can be
//! compared against `ServiceTimings::worst_case_pipeline_s()`.
//!
//! Stage semantics (all in simulated seconds):
//!
//! * **report** — `report_delay_s`: RMS report → USS ingestion.
//! * **publish** — ingestion → the record's usage appearing in a published
//!   cross-site summary (waits for the record's histogram slot to close).
//!   This stage is off the local-visibility path and is reported
//!   separately.
//! * **ums** — ingestion → the first UMS refresh that re-reads the user
//!   (every ingested record marks its user dirty in the USS, so the next
//!   actual refresh always covers it).
//! * **fcs** — UMS visibility → the first FCS refresh thereafter (the FCS
//!   recomputes from the whole UMS cache).
//! * **lib** — FCS visibility → the first libaequus query *served with a
//!   value fetched after* that FCS refresh (a cache hit on a stale entry
//!   does not count; this is the §III-A cache-TTL delay plus the query
//!   cadence).
//! * **end-to-end** — RMS report → lib visibility; the measured counterpart
//!   of `worst_case_pipeline_s()` (which likewise excludes stage IV).

use crate::registry::{Counter, Registry};
use crate::Histogram;
use std::collections::{BTreeMap, VecDeque};

/// Tracer configuration.
#[derive(Clone, Copy, Debug)]
pub struct TracerConfig {
    /// Sample every Nth reported record (1 = every record).
    pub sample_every: u64,
    /// Upper bound on concurrently tracked records; the oldest is evicted
    /// beyond this (counted in `aequus_tracer_evicted_total`).
    pub max_active: usize,
}

impl Default for TracerConfig {
    fn default() -> Self {
        Self {
            sample_every: 8,
            max_active: 4096,
        }
    }
}

#[derive(Debug)]
struct TraceRecord {
    user: String,
    reported_s: f64,
    /// Histogram slot the record's charge ends in (set at ingestion); the
    /// publish stage requires this slot to have closed.
    end_slot: Option<u64>,
    ingested_s: Option<f64>,
    published_s: Option<f64>,
    ums_s: Option<f64>,
    fcs_s: Option<f64>,
    lib_s: Option<f64>,
}

impl TraceRecord {
    fn finished(&self) -> bool {
        self.lib_s.is_some() && self.published_s.is_some()
    }
}

/// Sim-time pipeline tracer; lives behind a mutex inside
/// [`Telemetry`](crate::Telemetry) and is driven through the `trace_*`
/// methods there.
#[derive(Debug)]
pub struct PipelineTracer {
    cfg: TracerConfig,
    seen: u64,
    active: BTreeMap<u64, TraceRecord>,
    order: VecDeque<u64>,
    h_report: Histogram,
    h_publish: Histogram,
    h_ums: Histogram,
    h_fcs: Histogram,
    h_lib: Histogram,
    h_e2e: Histogram,
    c_sampled: Counter,
    c_completed: Counter,
    c_evicted: Counter,
}

impl PipelineTracer {
    /// Create a tracer registering its metrics in `registry`.
    pub fn new(cfg: TracerConfig, registry: &Registry) -> Self {
        Self {
            cfg: TracerConfig {
                sample_every: cfg.sample_every.max(1),
                max_active: cfg.max_active.max(1),
            },
            seen: 0,
            active: BTreeMap::new(),
            order: VecDeque::new(),
            h_report: registry.histogram("aequus_tracer_report_delay_s"),
            h_publish: registry.histogram("aequus_tracer_publish_delay_s"),
            h_ums: registry.histogram("aequus_tracer_ums_delay_s"),
            h_fcs: registry.histogram("aequus_tracer_fcs_delay_s"),
            h_lib: registry.histogram("aequus_tracer_lib_delay_s"),
            h_e2e: registry.histogram("aequus_tracer_end_to_end_s"),
            c_sampled: registry.counter("aequus_tracer_sampled_total"),
            c_completed: registry.counter("aequus_tracer_completed_total"),
            c_evicted: registry.counter("aequus_tracer_evicted_total"),
        }
    }

    /// Number of records currently tracked.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Stage 0: the RMS reports a completed job's usage at `now_s`.
    /// Returns whether the record was sampled into the tracer.
    pub fn on_report(&mut self, job: u64, user: &str, now_s: f64) -> bool {
        self.seen += 1;
        if !(self.seen - 1).is_multiple_of(self.cfg.sample_every) {
            return false;
        }
        self.c_sampled.inc();
        if self.active.len() >= self.cfg.max_active {
            self.evict_oldest();
        }
        self.active.insert(
            job,
            TraceRecord {
                user: user.to_string(),
                reported_s: now_s,
                end_slot: None,
                ingested_s: None,
                published_s: None,
                ums_s: None,
                fcs_s: None,
                lib_s: None,
            },
        );
        self.order.push_back(job);
        true
    }

    fn evict_oldest(&mut self) {
        while let Some(job) = self.order.pop_front() {
            if let Some(rec) = self.active.remove(&job) {
                if rec.lib_s.is_none() {
                    self.c_evicted.inc();
                }
                return;
            }
        }
    }

    /// Stage I complete: the record reached the USS.
    pub fn on_ingest(&mut self, job: u64, end_slot: u64, now_s: f64) {
        if let Some(rec) = self.active.get_mut(&job) {
            if rec.ingested_s.is_none() {
                rec.ingested_s = Some(now_s);
                rec.end_slot = Some(end_slot);
                self.h_report.record(now_s - rec.reported_s);
            }
        }
    }

    /// Stage II-a: a summary covering slots `< current_slot` was published
    /// for `published_users`.
    pub fn on_publish(&mut self, published_users: &[&str], current_slot: u64, now_s: f64) {
        let mut done: Vec<u64> = Vec::new();
        for (&job, rec) in self.active.iter_mut() {
            if rec.published_s.is_some() {
                continue;
            }
            let (Some(ingested), Some(end_slot)) = (rec.ingested_s, rec.end_slot) else {
                continue;
            };
            if end_slot < current_slot && published_users.contains(&rec.user.as_str()) {
                rec.published_s = Some(now_s);
                self.h_publish.record(now_s - ingested);
                if rec.finished() {
                    done.push(job);
                }
            }
        }
        self.finish(done);
    }

    /// Stage II-b: a UMS refresh ran. Every ingested record's user was
    /// marked dirty at ingestion, so all pending ingested records become
    /// visible here.
    pub fn on_ums_refresh(&mut self, now_s: f64) {
        for rec in self.active.values_mut() {
            if rec.ums_s.is_none() {
                if let Some(ingested) = rec.ingested_s {
                    rec.ums_s = Some(now_s);
                    self.h_ums.record(now_s - ingested);
                }
            }
        }
    }

    /// Stage II-c: an FCS refresh ran, recomputing from the current UMS
    /// cache — every UMS-visible record becomes FCS-visible.
    pub fn on_fcs_refresh(&mut self, now_s: f64) {
        for rec in self.active.values_mut() {
            if rec.fcs_s.is_none() {
                if let Some(ums) = rec.ums_s {
                    rec.fcs_s = Some(now_s);
                    self.h_fcs.record(now_s - ums);
                }
            }
        }
    }

    /// Stage III: a libaequus query for `user` was served with a value
    /// fetched from the FCS at `served_fetch_s`. Only fetches at or after
    /// the record's FCS visibility complete the chain.
    pub fn on_lib_query(&mut self, user: &str, served_fetch_s: f64, now_s: f64) {
        let mut done: Vec<u64> = Vec::new();
        for (&job, rec) in self.active.iter_mut() {
            if rec.lib_s.is_some() || rec.user != user {
                continue;
            }
            let Some(fcs) = rec.fcs_s else { continue };
            if served_fetch_s >= fcs {
                rec.lib_s = Some(now_s);
                self.h_lib.record(now_s - fcs);
                self.h_e2e.record(now_s - rec.reported_s);
                self.c_completed.inc();
                if rec.finished() {
                    done.push(job);
                }
            }
        }
        self.finish(done);
    }

    fn finish(&mut self, jobs: Vec<u64>) {
        for job in jobs {
            self.active.remove(&job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PipelineTracer, Registry) {
        let r = Registry::new();
        let t = PipelineTracer::new(
            TracerConfig {
                sample_every: 1,
                max_active: 16,
            },
            &r,
        );
        (t, r)
    }

    #[test]
    fn full_chain_records_every_stage() {
        let (mut t, r) = setup();
        assert!(t.on_report(1, "alice", 100.0));
        t.on_ingest(1, 3, 110.0); // report delay 10
        t.on_ums_refresh(150.0); // ums delay 40
        t.on_fcs_refresh(150.0); // fcs delay 0 (same tick)
                                 // A stale cache hit (fetched before FCS visibility) must not count.
        t.on_lib_query("alice", 140.0, 160.0);
        assert_eq!(t.active_count(), 1);
        // A fresh fetch completes the chain.
        t.on_lib_query("alice", 170.0, 170.0);
        t.on_publish(&["alice"], 4, 200.0); // publish delay 90
        assert_eq!(t.active_count(), 0, "finished trace removed");
        let s = r.snapshot();
        assert_eq!(s.histograms["aequus_tracer_report_delay_s"].count, 1);
        assert_eq!(s.histograms["aequus_tracer_ums_delay_s"].count, 1);
        assert_eq!(s.histograms["aequus_tracer_fcs_delay_s"].count, 1);
        assert_eq!(s.histograms["aequus_tracer_lib_delay_s"].count, 1);
        assert_eq!(s.histograms["aequus_tracer_publish_delay_s"].count, 1);
        let e2e = s.histograms["aequus_tracer_end_to_end_s"];
        assert_eq!(e2e.count, 1);
        assert_eq!(e2e.max, 70.0, "end-to-end = lib query − report");
        assert_eq!(s.counters["aequus_tracer_completed_total"], 1);
    }

    #[test]
    fn publish_waits_for_slot_close() {
        let (mut t, _r) = setup();
        t.on_report(1, "a", 0.0);
        t.on_ingest(1, 5, 10.0);
        t.on_publish(&["a"], 5, 20.0); // slot 5 still open
        t.on_publish(&["b"], 6, 30.0); // wrong user
        assert_eq!(t.active_count(), 1);
        t.on_publish(&["a"], 6, 40.0);
        // Published but lib chain incomplete: still tracked.
        assert_eq!(t.active_count(), 1);
    }

    #[test]
    fn sampling_takes_every_nth() {
        let r = Registry::new();
        let mut t = PipelineTracer::new(
            TracerConfig {
                sample_every: 4,
                max_active: 64,
            },
            &r,
        );
        let sampled = (0..16).filter(|&i| t.on_report(i, "u", 0.0)).count();
        assert_eq!(sampled, 4);
        assert_eq!(t.active_count(), 4);
    }

    #[test]
    fn eviction_bounds_active_set() {
        let r = Registry::new();
        let mut t = PipelineTracer::new(
            TracerConfig {
                sample_every: 1,
                max_active: 8,
            },
            &r,
        );
        for i in 0..20 {
            t.on_report(i, "u", i as f64);
        }
        assert_eq!(t.active_count(), 8);
        assert_eq!(r.snapshot().counters["aequus_tracer_evicted_total"], 12);
    }

    #[test]
    fn ums_before_ingest_is_ignored() {
        let (mut t, r) = setup();
        t.on_report(1, "a", 0.0);
        t.on_ums_refresh(5.0); // record not yet ingested
        t.on_ingest(1, 0, 10.0);
        t.on_ums_refresh(20.0);
        let s = r.snapshot();
        assert_eq!(s.histograms["aequus_tracer_ums_delay_s"].count, 1);
        assert_eq!(s.histograms["aequus_tracer_ums_delay_s"].max, 10.0);
    }
}
