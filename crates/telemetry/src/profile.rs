//! Continuous profiling: deterministic per-shard stage accounting with
//! dual clocks, bounded span rings, and machine-readable exports.
//!
//! The sharded engine needed an instrument panel, not printlns: when 8
//! workers run *slower* than 1 (as BENCH_PR6 measured on a small host), the
//! question "barrier stalls, shard imbalance, mailbox churn, or allocation
//! pressure?" must be answerable from a run artifact. This module provides:
//!
//! * [`ShardProfiler`] — a plain (non-atomic) per-shard accumulator owned
//!   by each simulation shard, mirroring how the engine keeps per-shard
//!   event counters: the hot loop never touches a lock. Stages are keyed by
//!   `&'static str`, so recording a call is one `BTreeMap` probe.
//! * **Dual clocks.** Every stage carries deterministic values (call
//!   counts, bytes on the wire — pure functions of the simulated schedule)
//!   *and* wall-clock nanoseconds (how long the host actually spent). The
//!   deterministic half is bit-identical across worker counts; the wall
//!   half is what you profile.
//! * A **bounded span ring** ([`ProfSpan`]) of per-epoch compute and
//!   barrier-wait windows, drop-oldest with a drop counter — a 100k-user
//!   run cannot OOM the profiler.
//! * [`RunProfile`] — the merged end-of-run artifact, exported as a Chrome
//!   trace-event JSON ([`RunProfile::to_chrome_trace`], loadable in
//!   `about://tracing` / Perfetto, one track per shard, epochs as frames),
//!   a folded-stacks text profile ([`RunProfile::to_folded`], deterministic
//!   by construction), and a JSON document that round-trips
//!   ([`RunProfile::to_json`] / [`RunProfile::from_json`]) for the
//!   `bench_diff` regression attributor.
//!
//! **Why barrier wait is attributed to the *waiting* shard:** a stalled
//! worker tells you which shards paid for the imbalance, not which shard
//! caused it. The shard that causes a stall is busy — its time shows up as
//! `epoch` compute; the shards that suffer show `barrier.wait`. Attributing
//! the wait to the waiter makes the two sides of an imbalance sum to the
//! same wall clock, so share-of-total comparisons (the `bench_diff`
//! attribution) stay meaningful.

use crate::export::{json_escape, JsonValue};
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

/// How much the profiler records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileMode {
    /// Nothing. Every profiler call is a branch on a plain bool.
    #[default]
    Off,
    /// Deterministic counters only (calls, bytes): no clock reads, no span
    /// ring — the "enabled but unsampled" tier, budgeted at ≤5% overhead.
    Counters,
    /// Counters plus wall-clock stage timing and the per-epoch span ring —
    /// full capture, budgeted at ≤10% overhead.
    Full,
}

/// Accumulated statistics for one named stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Times the stage ran (deterministic).
    pub calls: u64,
    /// Wall-clock nanoseconds spent in the stage (host-dependent; zero in
    /// [`ProfileMode::Counters`] and for purely counted stages).
    pub wall_ns: u64,
    /// Bytes the stage moved (deterministic; gossip wire accounting).
    pub bytes: u64,
}

impl StageStats {
    /// Accumulate another reading.
    pub fn merge(&mut self, other: &StageStats) {
        self.calls += other.calls;
        self.wall_ns = self.wall_ns.saturating_add(other.wall_ns);
        self.bytes += other.bytes;
    }
}

/// One recorded span: an epoch's compute window or a barrier wait, on the
/// run's shared wall-clock timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfSpan {
    /// Stage name (`"epoch"` or `"barrier.wait"`).
    pub name: String,
    /// Epoch index in the barrier schedule.
    pub epoch: u64,
    /// The epoch's simulated-time limit, seconds (the sim clock of the
    /// dual-clock pair).
    pub limit_s: f64,
    /// Start, nanoseconds since the run origin (the wall clock).
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Events the shard processed inside the span.
    pub events: u64,
}

/// Default capacity of the per-shard span ring.
pub const DEFAULT_SPAN_CAP: usize = 4096;

/// Stages whose values are wall-clock-only and therefore excluded from the
/// deterministic folded-stacks export (their *existence* depends on worker
/// count: the serial path never waits at a barrier).
pub const WALL_STAGES: &[&str] = &["epoch", "barrier.wait"];

/// The per-shard accumulator. Plain fields, no interior mutability: the
/// owning shard is the only writer, exactly like the engine's event
/// counters, so profiling adds no synchronization to the hot loop.
#[derive(Debug)]
pub struct ShardProfiler {
    mode: ProfileMode,
    shard: usize,
    origin: Instant,
    stages: BTreeMap<&'static str, StageStats>,
    spans: VecDeque<ProfSpan>,
    span_cap: usize,
    spans_dropped: u64,
    /// Bytes staged toward each destination shard (gossip wire accounting
    /// per link; deterministic).
    link_bytes: BTreeMap<usize, u64>,
    /// Open epoch window: `(epoch, limit_s, start, events_before)`.
    open: Option<(u64, f64, Instant, u64)>,
}

impl ShardProfiler {
    /// A profiler that records nothing (the default for tests and
    /// profiling-off scenarios).
    pub fn disabled() -> Self {
        Self::new(0, ProfileMode::Off, Instant::now())
    }

    /// A profiler for `shard` in `mode`. `origin` is the run-start instant
    /// shared by every shard, so all spans land on one timeline.
    pub fn new(shard: usize, mode: ProfileMode, origin: Instant) -> Self {
        Self {
            mode,
            shard,
            origin,
            stages: BTreeMap::new(),
            spans: VecDeque::new(),
            span_cap: DEFAULT_SPAN_CAP,
            spans_dropped: 0,
            link_bytes: BTreeMap::new(),
            open: None,
        }
    }

    /// The recording mode.
    pub fn mode(&self) -> ProfileMode {
        self.mode
    }

    /// Whether anything is recorded at all.
    pub fn is_on(&self) -> bool {
        self.mode != ProfileMode::Off
    }

    /// Whether wall-clock capture (timers + span ring) is on.
    pub fn is_full(&self) -> bool {
        self.mode == ProfileMode::Full
    }

    /// Count one call of `stage`.
    pub fn add_call(&mut self, stage: &'static str) {
        self.add(stage, 1, 0);
    }

    /// Count `calls` calls and `bytes` bytes against `stage`.
    pub fn add(&mut self, stage: &'static str, calls: u64, bytes: u64) {
        if self.mode == ProfileMode::Off {
            return;
        }
        let e = self.stages.entry(stage).or_default();
        e.calls += calls;
        e.bytes += bytes;
    }

    /// Add wall time to `stage` without a span (used for injected barrier
    /// sleeps on the serial path, where there is no natural wait to time).
    pub fn add_wall_ns(&mut self, stage: &'static str, ns: u64) {
        if self.mode == ProfileMode::Off {
            return;
        }
        let e = self.stages.entry(stage).or_default();
        e.calls += 1;
        e.wall_ns = e.wall_ns.saturating_add(ns);
    }

    /// Account `bytes` staged toward destination shard `dest` (the gossip
    /// bytes-on-wire budget, per link and in aggregate).
    pub fn add_wire(&mut self, dest: usize, bytes: u64) {
        if self.mode == ProfileMode::Off {
            return;
        }
        self.add("gossip.wire", 1, bytes);
        *self.link_bytes.entry(dest).or_insert(0) += bytes;
    }

    /// Open this shard's compute window for `epoch` (no-op below
    /// [`ProfileMode::Full`] — epoch *counts* are derivable from the
    /// schedule, only the wall timing needs a clock).
    pub fn begin_epoch(&mut self, epoch: u64, limit_s: f64, events_before: u64) {
        if self.mode != ProfileMode::Full {
            return;
        }
        self.open = Some((epoch, limit_s, Instant::now(), events_before));
    }

    /// Close the window opened by [`Self::begin_epoch`]: adds the elapsed
    /// wall time to the `epoch` stage and records a span.
    pub fn end_epoch(&mut self, events_now: u64) {
        let Some((epoch, limit_s, start, events_before)) = self.open.take() else {
            return;
        };
        let dur_ns = start.elapsed().as_nanos() as u64;
        let start_ns = start.duration_since(self.origin).as_nanos() as u64;
        let e = self.stages.entry("epoch").or_default();
        e.calls += 1;
        e.wall_ns = e.wall_ns.saturating_add(dur_ns);
        self.push_span(ProfSpan {
            name: "epoch".to_string(),
            epoch,
            limit_s,
            start_ns,
            dur_ns,
            events: events_now.saturating_sub(events_before),
        });
    }

    /// Record a barrier stall of `dur_ns` that ended *now*, charged to this
    /// shard (see the module docs for why the waiter pays), tagged with the
    /// epoch the shard was waiting to start.
    pub fn record_wait_ns(&mut self, dur_ns: u64, epoch: u64, limit_s: f64) {
        if self.mode == ProfileMode::Off {
            return;
        }
        let e = self.stages.entry("barrier.wait").or_default();
        e.calls += 1;
        e.wall_ns = e.wall_ns.saturating_add(dur_ns);
        if self.mode == ProfileMode::Full {
            let now_ns = self.origin.elapsed().as_nanos() as u64;
            self.push_span(ProfSpan {
                name: "barrier.wait".to_string(),
                epoch,
                limit_s,
                start_ns: now_ns.saturating_sub(dur_ns),
                dur_ns,
                events: 0,
            });
        }
    }

    fn push_span(&mut self, span: ProfSpan) {
        if self.spans.len() >= self.span_cap {
            self.spans.pop_front();
            self.spans_dropped += 1;
        }
        self.spans.push_back(span);
    }

    /// Override the span-ring capacity (tests exercise the bound).
    pub fn set_span_cap(&mut self, cap: usize) {
        self.span_cap = cap.max(1);
    }

    /// Snapshot into the owned, serializable per-shard profile. The caller
    /// (the engine) overlays deterministic event counters and queue
    /// high-water marks it owns.
    pub fn to_profile(&self) -> ShardProfile {
        ShardProfile {
            shard: self.shard,
            stages: self
                .stages
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            spans: self.spans.iter().cloned().collect(),
            spans_dropped: self.spans_dropped,
            link_bytes: self.link_bytes.clone(),
            queue_hwm: 0,
        }
    }
}

/// One shard's serializable profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardProfile {
    /// Shard (site) index — the stable `tid` of the Chrome trace.
    pub shard: usize,
    /// Per-stage accumulators.
    pub stages: BTreeMap<String, StageStats>,
    /// The retained span ring, oldest first.
    pub spans: Vec<ProfSpan>,
    /// Spans evicted from the ring.
    pub spans_dropped: u64,
    /// Gossip bytes staged per destination shard.
    pub link_bytes: BTreeMap<usize, u64>,
    /// Peak depth of the shard's event queue over the run (deterministic).
    pub queue_hwm: u64,
}

/// The merged end-of-run profile: every shard plus the per-site service
/// stages (USS ingest/publish, gossip merge, UMS/FCS refresh, WAL
/// append/replay) aggregated across sites.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunProfile {
    /// Per-shard profiles in site order.
    pub shards: Vec<ShardProfile>,
    /// Service-stage totals across all sites: `calls` from the histogram
    /// counts (deterministic), `wall_ns` from the histogram sums.
    pub services: BTreeMap<String, StageStats>,
    /// Peak cross-shard deliveries pending at any barrier (deterministic).
    pub mailbox_hwm: u64,
}

impl RunProfile {
    /// Render as Chrome trace-event JSON: load the file in `about://tracing`
    /// or <https://ui.perfetto.dev>. One process (`pid` 1), one track per
    /// shard (`tid` = site index — stable across worker counts), epochs and
    /// barrier waits as complete (`"X"`) events with microsecond timestamps
    /// on the shared run timeline.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
        };
        push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"aequus-sim\"}}"
                .to_string(),
            &mut first,
        );
        for sp in &self.shards {
            push(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                     \"args\":{{\"name\":\"shard {} (site {})\"}}}}",
                    sp.shard, sp.shard, sp.shard
                ),
                &mut first,
            );
        }
        for sp in &self.shards {
            for s in &sp.spans {
                push(
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                         \"pid\":1,\"tid\":{},\"args\":{{\"epoch\":{},\
                         \"limit_s\":{:?},\"events\":{}}}}}",
                        json_escape(&s.name),
                        s.start_ns / 1_000,
                        s.dur_ns / 1_000,
                        sp.shard,
                        s.epoch,
                        s.limit_s,
                        s.events
                    ),
                    &mut first,
                );
            }
        }
        out.push_str("]}");
        out
    }

    /// Render the deterministic half as folded stacks (`stack value` lines,
    /// the format flamegraph tooling consumes). Only schedule-derived values
    /// appear — call counts and wire bytes, never wall time and never the
    /// [`WALL_STAGES`] — so the output is byte-identical across worker
    /// counts on the same seed; the determinism suite gates exactly that.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for sp in &self.shards {
            for (stage, st) in &sp.stages {
                if WALL_STAGES.contains(&stage.as_str()) {
                    continue;
                }
                out.push_str(&format!(
                    "aequus;shard{};{} {}\n",
                    sp.shard, stage, st.calls
                ));
                if st.bytes > 0 {
                    out.push_str(&format!(
                        "aequus;shard{};{};bytes {}\n",
                        sp.shard, stage, st.bytes
                    ));
                }
            }
            out.push_str(&format!(
                "aequus;shard{};queue.hwm {}\n",
                sp.shard, sp.queue_hwm
            ));
        }
        for (stage, st) in &self.services {
            out.push_str(&format!("aequus;services;{} {}\n", stage, st.calls));
        }
        out.push_str(&format!("aequus;engine;mailbox.hwm {}\n", self.mailbox_hwm));
        out
    }

    /// Total wall nanoseconds per stage, shard stages and service stages
    /// pooled (shard stages summed across shards). The attribution input.
    pub fn wall_totals(&self) -> BTreeMap<String, u64> {
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for sp in &self.shards {
            for (stage, st) in &sp.stages {
                if st.wall_ns > 0 {
                    *totals.entry(stage.clone()).or_insert(0) += st.wall_ns;
                }
            }
        }
        for (stage, st) in &self.services {
            if st.wall_ns > 0 {
                *totals.entry(stage.clone()).or_insert(0) += st.wall_ns;
            }
        }
        totals
    }

    /// Each stage's share of the profile's total wall time, in `[0, 1]`.
    /// Empty when nothing recorded wall time.
    pub fn wall_shares(&self) -> BTreeMap<String, f64> {
        let totals = self.wall_totals();
        let sum: u64 = totals.values().sum();
        if sum == 0 {
            return BTreeMap::new();
        }
        totals
            .into_iter()
            .map(|(k, v)| (k, v as f64 / sum as f64))
            .collect()
    }

    /// Serialize to JSON (round-trips through [`Self::from_json`]).
    pub fn to_json(&self) -> String {
        fn stages_json(stages: &BTreeMap<String, StageStats>) -> String {
            let body: Vec<String> = stages
                .iter()
                .map(|(k, v)| {
                    format!(
                        "\"{}\":{{\"calls\":{},\"wall_ns\":{},\"bytes\":{}}}",
                        json_escape(k),
                        v.calls,
                        v.wall_ns,
                        v.bytes
                    )
                })
                .collect();
            format!("{{{}}}", body.join(","))
        }
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|sp| {
                let links: Vec<String> = sp
                    .link_bytes
                    .iter()
                    .map(|(d, b)| format!("\"{d}\":{b}"))
                    .collect();
                let spans: Vec<String> = sp
                    .spans
                    .iter()
                    .map(|s| {
                        format!(
                            "{{\"name\":\"{}\",\"epoch\":{},\"limit_s\":{:?},\
                             \"start_ns\":{},\"dur_ns\":{},\"events\":{}}}",
                            json_escape(&s.name),
                            s.epoch,
                            s.limit_s,
                            s.start_ns,
                            s.dur_ns,
                            s.events
                        )
                    })
                    .collect();
                format!(
                    "{{\"shard\":{},\"queue_hwm\":{},\"spans_dropped\":{},\
                     \"stages\":{},\"link_bytes\":{{{}}},\"spans\":[{}]}}",
                    sp.shard,
                    sp.queue_hwm,
                    sp.spans_dropped,
                    stages_json(&sp.stages),
                    links.join(","),
                    spans.join(",")
                )
            })
            .collect();
        format!(
            "{{\"shards\":[{}],\"services\":{},\"mailbox_hwm\":{}}}",
            shards.join(","),
            stages_json(&self.services),
            self.mailbox_hwm
        )
    }

    /// Parse JSON produced by [`Self::to_json`]. Returns `None` on
    /// malformed input.
    pub fn from_json(text: &str) -> Option<RunProfile> {
        let v = JsonValue::parse(text)?;
        fn stages(v: &JsonValue) -> Option<BTreeMap<String, StageStats>> {
            let mut out = BTreeMap::new();
            for (k, s) in v.as_object()? {
                out.insert(
                    k.clone(),
                    StageStats {
                        calls: s.get("calls")?.as_u64()?,
                        wall_ns: s.get("wall_ns")?.as_u64()?,
                        bytes: s.get("bytes")?.as_u64()?,
                    },
                );
            }
            Some(out)
        }
        let mut profile = RunProfile {
            services: stages(v.get("services")?)?,
            mailbox_hwm: v.get("mailbox_hwm")?.as_u64()?,
            ..RunProfile::default()
        };
        for sp in v.get("shards")?.as_array()? {
            let mut link_bytes = BTreeMap::new();
            for (k, b) in sp.get("link_bytes")?.as_object()? {
                link_bytes.insert(k.parse().ok()?, b.as_u64()?);
            }
            let mut spans = Vec::new();
            for s in sp.get("spans")?.as_array()? {
                spans.push(ProfSpan {
                    name: s.get("name")?.as_str()?.to_string(),
                    epoch: s.get("epoch")?.as_u64()?,
                    limit_s: s.get("limit_s")?.as_f64()?,
                    start_ns: s.get("start_ns")?.as_u64()?,
                    dur_ns: s.get("dur_ns")?.as_u64()?,
                    events: s.get("events")?.as_u64()?,
                });
            }
            profile.shards.push(ShardProfile {
                shard: sp.get("shard")?.as_u64()? as usize,
                stages: stages(sp.get("stages")?)?,
                spans,
                spans_dropped: sp.get("spans_dropped")?.as_u64()?,
                link_bytes,
                queue_hwm: sp.get("queue_hwm")?.as_u64()?,
            });
        }
        Some(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_profiler() -> ShardProfiler {
        ShardProfiler::new(3, ProfileMode::Full, Instant::now())
    }

    #[test]
    fn off_mode_records_nothing() {
        let mut p = ShardProfiler::disabled();
        p.add_call("x");
        p.add_wire(1, 100);
        p.begin_epoch(0, 0.0, 0);
        p.end_epoch(5);
        p.record_wait_ns(10, 0, 0.0);
        let prof = p.to_profile();
        assert!(prof.stages.is_empty() && prof.spans.is_empty());
        assert!(prof.link_bytes.is_empty());
    }

    #[test]
    fn counters_mode_skips_spans_but_counts() {
        let mut p = ShardProfiler::new(0, ProfileMode::Counters, Instant::now());
        p.add_wire(2, 64);
        p.add_wire(2, 36);
        p.begin_epoch(0, 5.0, 0);
        p.end_epoch(3);
        let prof = p.to_profile();
        assert!(prof.spans.is_empty(), "no span ring below Full");
        assert_eq!(prof.stages["gossip.wire"].calls, 2);
        assert_eq!(prof.stages["gossip.wire"].bytes, 100);
        assert_eq!(prof.link_bytes[&2], 100);
        assert!(!prof.stages.contains_key("epoch"));
    }

    #[test]
    fn full_mode_records_epoch_spans_with_event_deltas() {
        let mut p = full_profiler();
        p.begin_epoch(0, 0.0, 0);
        p.end_epoch(4);
        p.begin_epoch(1, 5.0, 4);
        p.end_epoch(9);
        let prof = p.to_profile();
        assert_eq!(prof.spans.len(), 2);
        assert_eq!(prof.spans[0].events, 4);
        assert_eq!(prof.spans[1].events, 5);
        assert_eq!(prof.spans[1].epoch, 1);
        assert_eq!(prof.stages["epoch"].calls, 2);
        assert!(prof.spans[1].start_ns >= prof.spans[0].start_ns, "monotone");
    }

    #[test]
    fn span_ring_drops_oldest_and_counts_drops() {
        let mut p = full_profiler();
        p.set_span_cap(3);
        for e in 0..5 {
            p.begin_epoch(e, e as f64, 0);
            p.end_epoch(0);
        }
        let prof = p.to_profile();
        assert_eq!(prof.spans.len(), 3);
        assert_eq!(prof.spans_dropped, 2);
        assert_eq!(prof.spans[0].epoch, 2, "oldest evicted first");
    }

    #[test]
    fn wait_is_charged_to_the_waiting_shard() {
        let mut p = full_profiler();
        p.record_wait_ns(1_000, 7, 35.0);
        let prof = p.to_profile();
        assert_eq!(prof.stages["barrier.wait"].wall_ns, 1_000);
        assert_eq!(prof.spans[0].name, "barrier.wait");
        assert_eq!(prof.spans[0].epoch, 7);
    }

    fn sample_run_profile() -> RunProfile {
        let mut p = full_profiler();
        p.add_wire(1, 128);
        p.begin_epoch(0, 0.0, 0);
        p.end_epoch(2);
        p.record_wait_ns(500, 1, 5.0);
        let mut shard = p.to_profile();
        shard.queue_hwm = 9;
        shard.stages.insert(
            "events.ticks".to_string(),
            StageStats {
                calls: 11,
                wall_ns: 0,
                bytes: 0,
            },
        );
        let mut services = BTreeMap::new();
        services.insert(
            "uss.ingest".to_string(),
            StageStats {
                calls: 40,
                wall_ns: 9_000,
                bytes: 0,
            },
        );
        RunProfile {
            shards: vec![shard],
            services,
            mailbox_hwm: 6,
        }
    }

    #[test]
    fn chrome_trace_has_tracks_and_complete_events() {
        let trace = sample_run_profile().to_chrome_trace();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\":\"M\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"tid\":3"));
        assert!(trace.contains("shard 3 (site 3)"));
        // Valid JSON by the crate's own generic reader.
        let v = JsonValue::parse(&trace).expect("valid trace JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert!(events.len() >= 4);
    }

    #[test]
    fn folded_excludes_wall_stages_and_includes_bytes() {
        let folded = sample_run_profile().to_folded();
        assert!(folded.contains("aequus;shard3;gossip.wire 1\n"));
        assert!(folded.contains("aequus;shard3;gossip.wire;bytes 128\n"));
        assert!(folded.contains("aequus;shard3;events.ticks 11\n"));
        assert!(folded.contains("aequus;shard3;queue.hwm 9\n"));
        assert!(folded.contains("aequus;services;uss.ingest 40\n"));
        assert!(folded.contains("aequus;engine;mailbox.hwm 6\n"));
        assert!(!folded.contains("barrier.wait"), "wall stages excluded");
        assert!(!folded.contains(";epoch "), "wall stages excluded");
    }

    #[test]
    fn json_round_trips() {
        let profile = sample_run_profile();
        let back = RunProfile::from_json(&profile.to_json()).expect("parse own output");
        assert_eq!(back, profile);
        assert!(RunProfile::from_json("{\"shards\":").is_none());
    }

    #[test]
    fn wall_shares_sum_to_one() {
        let profile = sample_run_profile();
        let shares = profile.wall_shares();
        let sum: f64 = shares.values().sum();
        assert!((sum - 1.0).abs() < 1e-12, "{shares:?}");
        assert!(shares.contains_key("barrier.wait"));
        assert!(shares.contains_key("uss.ingest"));
    }
}
