//! Decision provenance: a bounded store of served-priority explanations.
//!
//! The telemetry crate cannot depend on the core fairshare types, so the
//! explanation body is type-erased: the capturing layer (libaequus, via the
//! FCS) pre-renders the full component breakdown as a JSON string (see
//! `aequus_core::explain`) and this store retains it alongside the serving
//! metadata — who asked, when, which trace carried the underlying usage, and
//! the factor actually served. Replaying the JSON through
//! `aequus_core::explain::Explanation::from_json` reproduces the served
//! priority bit-for-bit.

/// One captured decision.
#[derive(Clone, Debug, PartialEq)]
pub struct ProvenanceRecord {
    /// Domain time the decision was served at.
    pub t_s: f64,
    /// The grid user the priority was served for.
    pub user: String,
    /// The trace whose pipeline delivered the inputs, when the serving
    /// refresh was traced; `0` otherwise.
    pub trace_id: u64,
    /// The fairshare factor actually served.
    pub factor: f64,
    /// The pre-rendered `Explanation` JSON (component breakdown).
    pub json: String,
}

/// Bounded FIFO store of [`ProvenanceRecord`]s.
#[derive(Debug)]
pub struct ProvenanceStore {
    cap: usize,
    records: Vec<ProvenanceRecord>,
    dropped: u64,
}

impl ProvenanceStore {
    /// Create a store holding at most `cap` records (minimum 1).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            records: Vec::new(),
            dropped: 0,
        }
    }

    /// Append a record, evicting the oldest when full.
    pub fn push(&mut self, rec: ProvenanceRecord) {
        if self.records.len() == self.cap {
            self.records.remove(0);
            self.dropped += 1;
        }
        self.records.push(rec);
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> &[ProvenanceRecord] {
        &self.records
    }

    /// The latest captured decision for `user`, if retained.
    pub fn latest_for(&self, user: &str) -> Option<&ProvenanceRecord> {
        self.records.iter().rev().find(|r| r.user == user)
    }

    /// Records evicted because the store was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(user: &str, t: f64) -> ProvenanceRecord {
        ProvenanceRecord {
            t_s: t,
            user: user.to_string(),
            trace_id: 0,
            factor: 0.5,
            json: String::from("{}"),
        }
    }

    #[test]
    fn bounded_fifo() {
        let mut s = ProvenanceStore::new(2);
        s.push(rec("a", 0.0));
        s.push(rec("b", 1.0));
        s.push(rec("c", 2.0));
        assert_eq!(s.records().len(), 2);
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.records()[0].user, "b");
    }

    #[test]
    fn latest_for_finds_newest() {
        let mut s = ProvenanceStore::new(8);
        s.push(rec("a", 0.0));
        s.push(rec("b", 1.0));
        s.push(rec("a", 2.0));
        assert_eq!(s.latest_for("a").unwrap().t_s, 2.0);
        assert!(s.latest_for("zz").is_none());
    }
}
