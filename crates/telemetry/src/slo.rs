//! Streaming fairness-SLO evaluation on **sim-time** windows.
//!
//! Each [`SloRule`] watches one scalar health signal (fairness error vs the
//! policy target for a subtree, a user's starvation age, cross-site view
//! divergence, per-link gossip staleness, convergence lag) against a fixed
//! threshold. Rather than alerting on the first bad sample, the engine runs
//! the multi-window **burn-rate** scheme from SRE practice: every
//! observation covers the sim-time interval since the previous one, the
//! engine keeps the time-weighted fraction of *bad* time over a short and a
//! long window, and an alert only fires when both windows burn the error
//! budget faster than `burn_factor`. The short window makes detection fast;
//! the long window filters blips.
//!
//! The alert lifecycle is `Ok → Pending → Firing → Ok`:
//!
//! * `Ok → Pending` (`"pending"`): the short window burns hot but the long
//!   window is still inside budget — an early warning.
//! * `→ Firing` (`"firing"`): both windows burn hot.
//! * `Firing → Ok` (`"resolved"`): the short-window burn fell below
//!   `resolve_factor`.
//! * `Pending → Ok` (`"cleared"`): the early warning subsided without ever
//!   firing.
//!
//! Every quantity the engine consumes or emits is sim time, so the alert
//! stream is bit-identical across worker counts — the same property the
//! folded profiles have. Two details keep it honest on real runs:
//!
//! * **Full-window denominators.** The bad fraction divides by the *full*
//!   window length even when the run is younger than the window, so the
//!   first bad sample of a fresh run cannot alone represent a 100% burn.
//! * **Warmup grace.** Observations before [`SloConfig::warmup_s`] are
//!   recorded as good: the first completing user transiently holds 100% of
//!   the observed usage, which is a property of an empty grid, not a
//!   fairness breach.

use std::collections::{BTreeMap, VecDeque};

/// Thresholds and burn-rate windows for the SLO engine. Fields set to `0.0`
/// where a comment says *auto* are resolved by the caller from the
/// scenario's gossip timings before rules are built.
#[derive(Clone, Debug, PartialEq)]
pub struct SloConfig {
    /// Fairness rules: absolute share error above this is a bad sample.
    /// The default tolerates the structural deviation of unsaturated runs
    /// (every active user converges to `1/n_active` regardless of target).
    pub fairness_threshold: f64,
    /// Starvation rules: a user below `starvation_frac · target` is
    /// accruing starvation age.
    pub starvation_frac: f64,
    /// Starvation rules: accrued age above this is a bad sample.
    pub starvation_age_s: f64,
    /// Staleness rules: a link's undelivered-data age above this is a bad
    /// sample. `0.0` = auto: `3 × (publish + exchange latency + ack
    /// timeout)`, three missed delivery opportunities.
    pub staleness_threshold_s: f64,
    /// Divergence rule: cross-site usage-view divergence (core-seconds)
    /// above this is a bad sample. `0.0` = auto from grid size and
    /// cadences.
    pub divergence_threshold: f64,
    /// Convergence-lag rule: sim seconds since the views were last within
    /// the divergence threshold; above this is a bad sample.
    pub convergence_lag_s: f64,
    /// Fast-detection window.
    pub short_window_s: f64,
    /// Blip-filter window.
    pub long_window_s: f64,
    /// Error budget: the tolerated bad-time fraction per window.
    pub budget: f64,
    /// Both windows must burn the budget at ≥ this multiple to fire.
    pub burn_factor: f64,
    /// A firing alert resolves when the short-window burn drops below this.
    pub resolve_factor: f64,
    /// Observations before this sim time are recorded as good.
    pub warmup_s: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            fairness_threshold: 0.5,
            starvation_frac: 0.25,
            starvation_age_s: 3600.0,
            staleness_threshold_s: 0.0,
            divergence_threshold: 0.0,
            convergence_lag_s: 600.0,
            short_window_s: 300.0,
            long_window_s: 1200.0,
            budget: 0.05,
            burn_factor: 2.0,
            resolve_factor: 1.0,
            warmup_s: 300.0,
        }
    }
}

/// One streaming rule: a named signal compared against a threshold. The
/// rule-kind lives in the `id` prefix (`fairness:`, `starvation:`,
/// `staleness:`, …); the engine itself is kind-agnostic.
#[derive(Clone, Debug, PartialEq)]
pub struct SloRule {
    /// Stable identifier, e.g. `staleness:1->0` or `fairness:U65`.
    pub id: String,
    /// Values strictly above this are bad samples.
    pub threshold: f64,
}

/// Lifecycle state of one rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertState {
    /// Inside budget.
    Ok,
    /// Short window burning hot; long window still inside budget.
    Pending,
    /// Both windows burning hot.
    Firing,
}

/// One lifecycle transition, stamped with sim time.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertEvent {
    /// Sim time of the transition.
    pub t_s: f64,
    /// The rule's `id`.
    pub rule: String,
    /// `"pending"`, `"firing"`, `"resolved"`, or `"cleared"`.
    pub transition: &'static str,
    /// The observed value at the transition.
    pub value: f64,
    /// Short-window burn rate (bad fraction / budget) at the transition.
    pub burn_short: f64,
    /// Long-window burn rate at the transition.
    pub burn_long: f64,
}

fn num(v: f64) -> String {
    format!("{v:?}")
}

impl AlertEvent {
    /// One canonical JSON object (no trailing newline). Deterministic:
    /// shortest round-tripping float rendering, fixed key order.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_s\":{},\"rule\":\"{}\",\"transition\":\"{}\",\"value\":{},\
             \"burn_short\":{},\"burn_long\":{}}}",
            num(self.t_s),
            crate::export::json_escape(&self.rule),
            self.transition,
            num(self.value),
            num(self.burn_short),
            num(self.burn_long),
        )
    }
}

/// Render an alert stream as JSONL, one event per line.
pub fn alerts_to_jsonl(events: &[AlertEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    out
}

#[derive(Debug)]
struct RuleState {
    /// `(t, dt, bad)`: the observation at sim time `t` covered the interval
    /// `(t - dt, t]`.
    window: VecDeque<(f64, f64, bool)>,
    /// Bad entries currently in `window` — lets the healthy-rule fast path
    /// skip the window scan entirely (burn rates are exactly 0.0).
    bad_entries: usize,
    prev_t: Option<f64>,
    state: AlertState,
}

/// The streaming evaluator: feed it one aligned value per rule at each
/// sample barrier; it returns the lifecycle transitions that occurred.
#[derive(Debug)]
pub struct SloEngine {
    cfg: SloConfig,
    rules: Vec<SloRule>,
    states: Vec<RuleState>,
    log: Vec<AlertEvent>,
}

impl SloEngine {
    /// Build an engine over a fixed rule set (the rules must be known up
    /// front — links come from the overlay, users from the policy).
    pub fn new(cfg: SloConfig, rules: Vec<SloRule>) -> Self {
        let states = rules
            .iter()
            .map(|_| RuleState {
                window: VecDeque::new(),
                bad_entries: 0,
                prev_t: None,
                state: AlertState::Ok,
            })
            .collect();
        Self {
            cfg,
            rules,
            states,
            log: Vec::new(),
        }
    }

    /// The configured rules, in observation order.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// The configuration in force.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Current lifecycle state of rule `idx`.
    pub fn state(&self, idx: usize) -> AlertState {
        self.states[idx].state
    }

    /// Number of rules currently firing.
    pub fn firing(&self) -> usize {
        self.states
            .iter()
            .filter(|s| s.state == AlertState::Firing)
            .count()
    }

    /// Every transition emitted so far, in order.
    pub fn events(&self) -> &[AlertEvent] {
        &self.log
    }

    /// Consume the engine, yielding the full transition log.
    pub fn into_events(self) -> Vec<AlertEvent> {
        self.log
    }

    /// Time-weighted bad fractions of rule `idx` over the trailing short
    /// and long windows, with the **full** window as denominator. One pass
    /// over the retained entries computes both; a rule with no bad entries
    /// skips the scan outright (both fractions are exactly 0.0), which keeps
    /// the healthy-fleet steady state nearly free.
    fn bad_fracs(&self, idx: usize, now_s: f64) -> (f64, f64) {
        let st = &self.states[idx];
        if st.bad_entries == 0 {
            return (0.0, 0.0);
        }
        let cut_short = now_s - self.cfg.short_window_s;
        let cut_long = now_s - self.cfg.long_window_s;
        let mut bad_short = 0.0;
        let mut bad_long = 0.0;
        for &(t, dt, is_bad) in &st.window {
            if !is_bad {
                continue;
            }
            // Clip the first partially-covered interval at each cutoff.
            if t > cut_short {
                bad_short += dt.min(t - cut_short);
            }
            if t > cut_long {
                bad_long += dt.min(t - cut_long);
            }
        }
        (
            bad_short / self.cfg.short_window_s,
            bad_long / self.cfg.long_window_s,
        )
    }

    /// Feed one observation per rule (aligned with [`Self::rules`]) at sim
    /// time `t_s`; returns the transitions this observation caused. Also
    /// appends them to the engine's cumulative log.
    pub fn observe(&mut self, t_s: f64, values: &[f64]) -> Vec<AlertEvent> {
        assert_eq!(
            values.len(),
            self.rules.len(),
            "one value per rule, in rule order"
        );
        let mut out = Vec::new();
        for (idx, (&value, rule)) in values.iter().zip(&self.rules).enumerate() {
            let st = &mut self.states[idx];
            let dt = st.prev_t.map_or(0.0, |p| t_s - p);
            st.prev_t = Some(t_s);
            let bad = t_s >= self.cfg.warmup_s && value > rule.threshold;
            st.window.push_back((t_s, dt, bad));
            st.bad_entries += usize::from(bad);
            let horizon = t_s - self.cfg.long_window_s;
            while st.window.front().is_some_and(|&(t, _, _)| t <= horizon) {
                if let Some((_, _, was_bad)) = st.window.pop_front() {
                    st.bad_entries -= usize::from(was_bad);
                }
            }
            let (frac_short, frac_long) = self.bad_fracs(idx, t_s);
            let burn_short = frac_short / self.cfg.budget;
            let burn_long = frac_long / self.cfg.budget;
            let hot_short = burn_short >= self.cfg.burn_factor;
            let hot_long = burn_long >= self.cfg.burn_factor;
            let st = &mut self.states[idx];
            let transition = match st.state {
                AlertState::Ok if hot_short && hot_long => Some(("firing", AlertState::Firing)),
                AlertState::Ok if hot_short => Some(("pending", AlertState::Pending)),
                AlertState::Pending if hot_short && hot_long => {
                    Some(("firing", AlertState::Firing))
                }
                AlertState::Pending if burn_short < self.cfg.resolve_factor => {
                    Some(("cleared", AlertState::Ok))
                }
                AlertState::Firing if burn_short < self.cfg.resolve_factor => {
                    Some(("resolved", AlertState::Ok))
                }
                _ => None,
            };
            if let Some((name, next)) = transition {
                st.state = next;
                out.push(AlertEvent {
                    t_s,
                    rule: rule.id.clone(),
                    transition: name,
                    value,
                    burn_short,
                    burn_long,
                });
            }
        }
        self.log.extend(out.iter().cloned());
        out
    }
}

/// Per-user starvation clock: turns the share-below-line condition into an
/// *age* signal the burn-rate engine can threshold. Deterministic — pure
/// sim-time bookkeeping.
#[derive(Debug, Default)]
pub struct StarvationClock {
    below_since: BTreeMap<String, f64>,
}

impl StarvationClock {
    /// Observe `user`'s achieved share vs their target at `now_s`; returns
    /// the accrued starvation age (0 while at or above
    /// `frac · target`, or when the target is zero).
    pub fn age(&mut self, user: &str, achieved: f64, target: f64, frac: f64, now_s: f64) -> f64 {
        if target <= 0.0 || achieved >= frac * target {
            self.below_since.remove(user);
            return 0.0;
        }
        match self.below_since.get(user) {
            Some(&since) => now_s - since,
            None => {
                // Allocate the key only on the healthy→starving edge, not
                // every sample.
                self.below_since.insert(user.to_string(), now_s);
                0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig {
            staleness_threshold_s: 150.0,
            warmup_s: 0.0,
            ..SloConfig::default()
        }
    }

    fn engine(threshold: f64) -> SloEngine {
        SloEngine::new(
            cfg(),
            vec![SloRule {
                id: "staleness:1->0".to_string(),
                threshold,
            }],
        )
    }

    /// The calibrated chaos timeline: 60 s samples, the signal breaches
    /// from t=480 through t=600 (a 300–600 s outage plus ack drain), then
    /// recovers. Pending at the first hot short window, firing once the
    /// long window burns too, resolved once the short window is clean.
    #[test]
    fn outage_timeline_fires_and_resolves() {
        let mut e = engine(150.0);
        let mut events = Vec::new();
        for i in 1..=30 {
            let t = i as f64 * 60.0;
            let v = if (480.0..=600.0).contains(&t) {
                200.0
            } else {
                10.0
            };
            events.extend(e.observe(t, &[v]));
        }
        let seq: Vec<(f64, &str)> = events.iter().map(|a| (a.t_s, a.transition)).collect();
        assert_eq!(
            seq,
            vec![(480.0, "pending"), (540.0, "firing"), (900.0, "resolved")]
        );
        assert_eq!(e.state(0), AlertState::Ok);
        assert_eq!(e.events().len(), 3);
        // Burn rates at the firing edge: 2/5 of the short window and 1/10
        // of the long window were bad, against a 5% budget.
        let firing = &events[1];
        assert!((firing.burn_short - 8.0).abs() < 1e-9);
        assert!((firing.burn_long - 2.0).abs() < 1e-9);
    }

    /// A single bad sample heats the short window but never the long one:
    /// pending, then cleared — no firing.
    #[test]
    fn short_blip_clears_without_firing() {
        let mut e = engine(150.0);
        let mut events = Vec::new();
        for i in 1..=20 {
            let t = i as f64 * 60.0;
            let v = if t == 300.0 { 200.0 } else { 10.0 };
            events.extend(e.observe(t, &[v]));
        }
        let seq: Vec<&str> = events.iter().map(|a| a.transition).collect();
        assert_eq!(seq, vec!["pending", "cleared"]);
        assert_eq!(e.firing(), 0);
    }

    /// Observations before warmup are recorded as good even when the value
    /// breaches — the empty-grid transient must not alert.
    #[test]
    fn warmup_grace_swallows_early_breaches() {
        let mut e = SloEngine::new(
            SloConfig {
                warmup_s: 300.0,
                ..cfg()
            },
            vec![SloRule {
                id: "fairness:U65".to_string(),
                threshold: 0.5,
            }],
        );
        for i in 1..=4 {
            // 1.0 > 0.5 at t=60..240, all inside warmup.
            assert!(e.observe(i as f64 * 60.0, &[1.0]).is_empty());
        }
        // Past warmup with a good value: still quiet.
        assert!(e.observe(300.0, &[0.1]).is_empty());
        assert!(e.events().is_empty());
    }

    /// The denominator is the full window even when the run is younger:
    /// one bad sample at t=60 burns 60/300 of the short window, not 100%.
    #[test]
    fn young_run_uses_full_window_denominator() {
        let mut e = engine(150.0);
        e.observe(60.0, &[200.0]);
        let evs = e.observe(120.0, &[200.0]);
        // 60 s of bad time over the 300 s short window = 0.2 → burn 4.0;
        // long window 60/1200 → burn 1.0 < 2.0: pending only.
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].transition, "pending");
        assert!((evs[0].burn_short - 4.0).abs() < 1e-9);
    }

    #[test]
    fn starvation_clock_accrues_and_resets() {
        let mut c = StarvationClock::default();
        assert_eq!(c.age("u", 0.5, 0.4, 0.25, 0.0), 0.0);
        assert_eq!(c.age("u", 0.01, 0.4, 0.25, 100.0), 0.0);
        assert_eq!(c.age("u", 0.01, 0.4, 0.25, 400.0), 300.0);
        assert_eq!(c.age("u", 0.2, 0.4, 0.25, 500.0), 0.0, "recovered");
        assert_eq!(c.age("u", 0.01, 0.4, 0.25, 600.0), 0.0, "episode restarts");
        assert_eq!(c.age("u", 0.01, 0.4, 0.25, 700.0), 100.0);
        assert_eq!(c.age("z", 0.0, 0.0, 0.25, 900.0), 0.0, "zero target");
    }

    #[test]
    fn jsonl_rendering_is_canonical() {
        let ev = AlertEvent {
            t_s: 540.0,
            rule: "staleness:1->0".to_string(),
            transition: "firing",
            value: 212.5,
            burn_short: 8.0,
            burn_long: 2.0,
        };
        assert_eq!(
            ev.to_json(),
            "{\"t_s\":540.0,\"rule\":\"staleness:1->0\",\"transition\":\"firing\",\
             \"value\":212.5,\"burn_short\":8.0,\"burn_long\":2.0}"
        );
        let two = alerts_to_jsonl(&[ev.clone(), ev]);
        assert_eq!(two.lines().count(), 2);
        // Hostile rule ids are escaped, not embedded raw.
        let hostile = AlertEvent {
            t_s: 0.0,
            rule: "fairness:evil\"user\\one\n".to_string(),
            transition: "pending",
            value: 1.0,
            burn_short: 2.0,
            burn_long: 0.0,
        };
        assert!(hostile.to_json().contains("evil\\\"user\\\\one\\n"));
    }
}
