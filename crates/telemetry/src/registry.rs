//! The metric registry: named counters, gauges, and histograms with
//! get-or-create registration and point-in-time snapshots.
//!
//! Registration takes a short mutex (cold path: services register handles
//! once at wiring time); the returned handles record through atomics only.
//! Metric names follow the scheme `aequus_<service>_<metric>` (see
//! DESIGN.md, Observability).

use crate::events::TelemetryEvent;
use crate::hist::{HistCore, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic counter handle. Disabled handles no-op.
#[derive(Clone, Debug, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Gauge handle (an `f64` that can move both ways). Disabled handles no-op.
#[derive(Clone, Debug, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// The registry of all metrics of one telemetry domain (one site, one
/// engine, …).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<String, Arc<HistCore>>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("registry poisoned");
        Counter(Some(Arc::clone(map.entry(name.to_string()).or_default())))
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("registry poisoned");
        Gauge(Some(Arc::clone(map.entry(name.to_string()).or_default())))
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.hists.lock().expect("registry poisoned");
        Histogram(Some(Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(HistCore::new())),
        )))
    }

    /// Capture the current value of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: self
                .hists
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            events: Vec::new(),
            events_dropped: 0,
        }
    }
}

/// A point-in-time capture of a [`Registry`] — what the exporters render
/// and the sim surfaces per site in its metrics samples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// The retained event ring at snapshot time, oldest first. A bare
    /// [`Registry::snapshot`] leaves this empty — the ring lives in the
    /// [`Telemetry`](crate::Telemetry) facade, whose `snapshot()` fills it.
    pub events: Vec<TelemetryEvent>,
    /// Events evicted from the ring before the snapshot.
    pub events_dropped: u64,
}

impl Snapshot {
    /// Whether no metric was ever registered and no event retained.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
    }

    /// Render in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        crate::export::to_prometheus(self)
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        crate::export::to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic_across_snapshots() {
        let r = Registry::new();
        let c = r.counter("aequus_test_total");
        let mut last = 0;
        for i in 1..=50u64 {
            c.add(i);
            let snap = r.snapshot();
            let now = snap.counters["aequus_test_total"];
            assert!(now > last, "counter must only grow");
            last = now;
        }
        assert_eq!(last, (1..=50).sum::<u64>());
    }

    #[test]
    fn registration_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.snapshot().counters["x"], 2, "same underlying cell");
        assert_eq!(r.snapshot().counters.len(), 1);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let r = Registry::new();
        let g = r.gauge("aequus_test_gauge");
        g.set(2.5);
        assert_eq!(r.snapshot().gauges["aequus_test_gauge"], 2.5);
        g.set(-1.0);
        assert_eq!(r.snapshot().gauges["aequus_test_gauge"], -1.0);
    }

    #[test]
    fn snapshot_covers_all_kinds() {
        let r = Registry::new();
        r.counter("c").inc();
        r.gauge("g").set(1.0);
        r.histogram("h").record(3.0);
        let s = r.snapshot();
        assert!(!s.is_empty());
        assert_eq!(s.counters.len(), 1);
        assert_eq!(s.gauges.len(), 1);
        assert_eq!(s.histograms["h"].count, 1);
    }
}
