//! A bounded ring buffer of recent notable events — cache evictions, forced
//! full rebuilds, gossip merges. Keeps the last N events; older ones are
//! dropped (counted), so the buffer's footprint is fixed no matter how long
//! a deployment runs.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One structured event.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryEvent {
    /// Simulated/domain time of the event in seconds; `-1.0` when the
    /// emitting call site has no clock (e.g. PDS policy edits).
    pub t_s: f64,
    /// Dot-separated event kind, e.g. `"fcs.full_rebuild"`. Owned (not
    /// `&'static str`) so archived snapshots can be parsed back.
    pub kind: String,
    /// Free-form human-readable detail.
    pub detail: String,
}

/// The bounded event ring.
#[derive(Debug)]
pub struct EventRing {
    cap: usize,
    buf: Mutex<VecDeque<TelemetryEvent>>,
    dropped: AtomicU64,
}

impl EventRing {
    /// Create a ring holding at most `cap` events (minimum 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            cap,
            buf: Mutex::new(VecDeque::with_capacity(cap)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&self, ev: TelemetryEvent) {
        let mut buf = self.buf.lock().expect("event ring poisoned");
        if buf.len() == self.cap {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<TelemetryEvent> {
        self.buf
            .lock()
            .expect("event ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Events evicted so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: usize) -> TelemetryEvent {
        TelemetryEvent {
            t_s: i as f64,
            kind: "test.event".to_string(),
            detail: format!("event {i}"),
        }
    }

    #[test]
    fn wraparound_keeps_last_n() {
        let ring = EventRing::new(4);
        for i in 0..10 {
            ring.push(ev(i));
        }
        let kept = ring.recent();
        assert_eq!(kept.len(), 4);
        assert_eq!(kept[0].t_s, 6.0, "oldest retained is event 6");
        assert_eq!(kept[3].t_s, 9.0);
        assert_eq!(ring.dropped(), 6);
    }

    #[test]
    fn under_capacity_drops_nothing() {
        let ring = EventRing::new(8);
        ring.push(ev(0));
        ring.push(ev(1));
        assert_eq!(ring.recent().len(), 2);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.capacity(), 8);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = EventRing::new(0);
        ring.push(ev(0));
        ring.push(ev(1));
        assert_eq!(ring.recent().len(), 1);
        assert_eq!(ring.recent()[0].t_s, 1.0);
    }
}
