//! Log-bucketed histograms with atomic (lock-free) recording.
//!
//! The bucketing is log-linear, HDR-style: each power-of-two octave is split
//! into [`SUBS`] linear sub-buckets, giving a worst-case quantile
//! overestimate of `1/SUBS` (6.25%) while keeping `record` to a handful of
//! bit operations and one relaxed `fetch_add` — no locks, no allocation.
//!
//! Values are non-negative `f64`s (seconds, counts, ratios). The covered
//! range is `[2^MIN_EXP, 2^MAX_EXP)` ≈ `[2.3e-10, 6.6e4]`; values below the
//! range (including exact zeros) clamp into the first bucket, values above
//! clamp into the last, whose reported upper bound is `+inf`. NaN and
//! negative values are ignored.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two octave.
pub const SUBS: usize = 1 << SUB_BITS;
/// Smallest representable exponent (values below clamp to bucket 0).
const MIN_EXP: i32 = -32;
/// One past the largest representable exponent (values above clamp to the
/// last bucket).
const MAX_EXP: i32 = 16;
/// Total bucket count.
const NBUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) << SUB_BITS;

/// Map a positive finite value to its bucket index.
fn bucket_index(v: f64) -> usize {
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    if exp < MIN_EXP {
        return 0; // includes subnormals and exact zero
    }
    if exp >= MAX_EXP {
        return NBUCKETS - 1; // includes +inf
    }
    let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    (((exp - MIN_EXP) as usize) << SUB_BITS) | sub
}

/// Inclusive upper bound of bucket `i` — what quantile estimates report.
fn bucket_upper(i: usize) -> f64 {
    if i >= NBUCKETS - 1 {
        return f64::INFINITY;
    }
    let exp = MIN_EXP + (i >> SUB_BITS) as i32;
    let sub = (i % SUBS) as f64;
    (1.0 + (sub + 1.0) / SUBS as f64) * 2f64.powi(exp)
}

fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

fn atomic_f64_max(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        if f64::from_bits(cur) >= v {
            return;
        }
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

/// The shared histogram storage. All operations are atomic with relaxed
/// ordering — adequate for statistics, and free of locks on the record path.
pub(crate) struct HistCore {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl std::fmt::Debug for HistCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistCore")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish()
    }
}

impl HistCore {
    pub(crate) fn new() -> Self {
        Self {
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            max_bits: AtomicU64::new(0),
        }
    }

    fn record(&self, v: f64) {
        if v.is_nan() || v < 0.0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, v);
        atomic_f64_max(&self.max_bits, v);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Quantile estimate: the upper bound of the bucket holding the
    /// `ceil(q·count)`-th recorded value (0.0 when empty). Overestimates by
    /// at most one sub-bucket width (`1/SUBS` relative).
    fn quantile(&self, q: f64) -> f64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0.0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(NBUCKETS - 1)
    }
}

/// A cheap cloneable handle to a histogram; disabled handles (from a
/// disabled [`Telemetry`](crate::Telemetry)) make every operation a no-op.
#[derive(Clone, Debug, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistCore>>);

impl Histogram {
    /// Record one value.
    pub fn record(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.record(v);
        }
    }

    /// Start a wall-clock span; the guard records the elapsed seconds into
    /// this histogram when dropped. Disabled handles never call
    /// [`Instant::now`], so the disabled cost is a branch.
    #[must_use = "dropping the guard immediately records a ~0 s span; bind it with `let _span = …`"]
    pub fn start_timer(&self) -> SpanTimer {
        SpanTimer(self.0.as_ref().map(|core| (core.clone(), Instant::now())))
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Current statistics of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::default, |c| c.snapshot())
    }
}

/// RAII guard recording a span duration (seconds) on drop.
#[derive(Debug)]
#[must_use = "dropping the guard immediately records a ~0 s span; bind it with `let _span = …`"]
pub struct SpanTimer(Option<(Arc<HistCore>, Instant)>);

impl SpanTimer {
    /// End the span now (identical to dropping the guard).
    pub fn observe(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some((core, start)) = self.0.take() {
            core.record(start.elapsed().as_secs_f64());
        }
    }
}

/// Point-in-time summary statistics of one histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Largest recorded value (exact, not bucketed).
    pub max: f64,
    /// Median estimate (bucket upper bound).
    pub p50: f64,
    /// 95th-percentile estimate (bucket upper bound).
    pub p95: f64,
    /// 99th-percentile estimate (bucket upper bound).
    pub p99: f64,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> Histogram {
        Histogram(Some(Arc::new(HistCore::new())))
    }

    #[test]
    fn bucket_boundaries_are_log_linear() {
        // Exact powers of two land on sub-bucket 0 of their octave; the
        // reported upper bound is one sub-bucket above.
        for exp in [-10i32, -1, 0, 1, 10] {
            let v = 2f64.powi(exp);
            let i = bucket_index(v);
            assert_eq!(i % SUBS, 0, "power of two starts an octave");
            let upper = bucket_upper(i);
            assert!(upper > v && upper <= v * (1.0 + 1.0 / SUBS as f64) + 1e-12);
        }
        // Within an octave, sub-buckets advance linearly.
        assert_eq!(bucket_index(1.0) + 1, bucket_index(1.0 + 1.0 / 16.0));
        assert_eq!(bucket_index(1.0) + 15, bucket_index(1.0 + 15.0 / 16.0));
        assert_eq!(bucket_index(2.0), bucket_index(1.0) + 16);
    }

    #[test]
    fn quantile_overestimates_by_at_most_one_sub_bucket() {
        let h = hist();
        for v in [0.5, 1.0, 2.0, 4.0, 100.0, 250.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.p99 >= 250.0 && s.p99 <= 250.0 * (1.0 + 1.0 / SUBS as f64));
        assert_eq!(s.max, 250.0, "max is exact");
        assert!((s.sum - 357.5).abs() < 1e-9);
        assert_eq!(s.count, 6);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let h = hist();
        h.record(0.0); // below range
        h.record(1e-30); // below range
        h.record(1e12); // above range
        h.record(f64::NAN); // ignored
        h.record(-1.0); // ignored
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.max, 1e12);
        assert_eq!(s.p99, f64::INFINITY, "overflow bucket reports +inf");
        // The two tiny values live in bucket 0.
        assert!(s.p50 <= bucket_upper(0) + 1e-18);
    }

    #[test]
    fn median_of_identical_values() {
        let h = hist();
        for _ in 0..100 {
            h.record(3.0);
        }
        let s = h.snapshot();
        assert!(s.p50 > 3.0 && s.p50 <= 3.0 * (1.0 + 1.0 / SUBS as f64));
        assert_eq!(s.p50, s.p99, "all mass in one bucket");
    }

    #[test]
    fn disabled_histogram_is_a_no_op() {
        let h = Histogram::default();
        h.record(1.0);
        let t = h.start_timer();
        t.observe();
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn span_timer_records_elapsed_seconds() {
        let h = hist();
        {
            let _t = h.start_timer();
            std::hint::black_box((0..1000u64).sum::<u64>());
        }
        assert_eq!(h.count(), 1);
        let s = h.snapshot();
        assert!(s.max > 0.0 && s.max < 1.0, "sub-second span: {}", s.max);
    }
}
