//! Causal spans: the trace-context propagation layer.
//!
//! Where the [`tracer`](crate::tracer) measures *aggregate* per-stage delay
//! distributions, spans answer the per-record question "what happened to
//! *this* usage report": a sampled report starts a **trace**, and every
//! pipeline stage it passes through — USS ingest, summary publication, each
//! gossip hop (including retries, resyncs, and snapshot catch-ups), UMS/UMS
//! refresh, FCS recompute, and the libaequus query that finally serves the
//! updated priority — records a [`SpanRecord`] causally linked to its
//! predecessor through a [`TraceCtx`].
//!
//! A `TraceCtx` is deliberately tiny (two `u64`s) and `Copy`, so it can ride
//! inside the USS wire messages across sites and be retained per published
//! sequence number for retransmission. Span ids embed the owning site, so
//! ids allocated independently on different sites never collide and a
//! [`SpanTree`] can be assembled from the union of all per-site stores.
//!
//! Sampling is controlled by [`SpanConfig::sample_every`]; `0` means the
//! layer is wired but never samples — the *enabled-but-unsampled* mode whose
//! cost on the hot path is one branch per report (the ctx stays `None`, so
//! no downstream stage does any work).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The causal context attached to an in-flight traced record: which trace it
/// belongs to and which span is the causal parent of the next hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCtx {
    /// The trace this record belongs to (the root span's id).
    pub trace_id: u64,
    /// The most recent span on this causal path; the next recorded span
    /// becomes its child.
    pub span: u64,
}

/// One recorded causal span.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique across sites; embeds the owning site).
    pub span_id: u64,
    /// The causal parent's span id; `0` for a trace root.
    pub parent_span: u64,
    /// Stage name, e.g. `"uss.ingest"` or `"gossip.merge"`.
    pub name: String,
    /// The site that recorded the span.
    pub site: u32,
    /// Domain time the span was recorded at.
    pub t_s: f64,
    /// Free-form detail (user, sequence numbers, …).
    pub detail: String,
}

/// Span-layer configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpanConfig {
    /// Sample every Nth trace root (`start_trace` call); `0` disables
    /// sampling entirely (wired but inert), `1` traces every report.
    pub sample_every: u64,
    /// Bounded span-store capacity; the oldest span is evicted (and
    /// counted) beyond this.
    pub store_cap: usize,
    /// The owning site, embedded in allocated span ids so independently
    /// allocated ids never collide across sites.
    pub site: u32,
    /// Whether decision provenance ([`crate::provenance`]) is captured.
    pub capture_provenance: bool,
}

impl Default for SpanConfig {
    fn default() -> Self {
        Self {
            sample_every: 0,
            store_cap: 4096,
            site: 0,
            capture_provenance: false,
        }
    }
}

impl SpanConfig {
    /// Full-capture configuration for site `site`: every report traced,
    /// provenance captured.
    pub fn full(site: u32) -> Self {
        Self {
            sample_every: 1,
            site,
            capture_provenance: true,
            ..Self::default()
        }
    }
}

/// The per-site bounded span store. Lives behind the
/// [`Telemetry`](crate::Telemetry) facade; sites on different "machines"
/// each own one and a [`SpanTree`] merges them.
#[derive(Debug)]
pub struct SpanStore {
    cap: usize,
    spans: Vec<SpanRecord>,
    dropped: u64,
    /// Next local span sequence number (combined with the site tag).
    next_seq: u64,
    site: u32,
}

impl SpanStore {
    /// Bits reserved for the per-site sequence; the site tag sits above.
    const SITE_SHIFT: u32 = 40;

    /// Create a store for `site` holding at most `cap` spans.
    pub fn new(site: u32, cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            spans: Vec::new(),
            dropped: 0,
            next_seq: 0,
            site,
        }
    }

    /// Allocate the next span id: deterministic per site (a plain sequence)
    /// and globally unique (the site tag occupies the high bits).
    pub fn alloc_id(&mut self) -> u64 {
        self.next_seq += 1;
        ((self.site as u64 + 1) << Self::SITE_SHIFT) | self.next_seq
    }

    /// Append a span, evicting the oldest when full.
    pub fn push(&mut self, span: SpanRecord) {
        if self.spans.len() == self.cap {
            self.spans.remove(0);
            self.dropped += 1;
        }
        self.spans.push(span);
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Spans evicted because the store was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The owning site.
    pub fn site(&self) -> u32 {
        self.site
    }
}

/// One node of a reconstructed causal tree.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanTree {
    /// The span at this node.
    pub record: SpanRecord,
    /// Child spans, ordered by recording time (ties by span id).
    pub children: Vec<SpanTree>,
}

impl SpanTree {
    /// Assemble causal trees from the union of per-site span stores. Spans
    /// whose parent is missing (evicted, or the parent site's store was not
    /// provided) become additional roots of their trace, so partial data
    /// still renders. Returns the roots grouped by trace, in trace-id order.
    pub fn assemble(stores: &[&[SpanRecord]]) -> Vec<SpanTree> {
        let mut all: Vec<&SpanRecord> = stores.iter().flat_map(|s| s.iter()).collect();
        all.sort_by(|a, b| {
            a.trace_id
                .cmp(&b.trace_id)
                .then(a.t_s.partial_cmp(&b.t_s).expect("finite span times"))
                .then(a.span_id.cmp(&b.span_id))
        });
        let ids: BTreeMap<u64, usize> = all
            .iter()
            .enumerate()
            .map(|(i, s)| (s.span_id, i))
            .collect();
        let mut children: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut roots: Vec<usize> = Vec::new();
        for (i, span) in all.iter().enumerate() {
            match ids.get(&span.parent_span) {
                Some(&p) if span.parent_span != 0 => children.entry(p).or_default().push(i),
                _ => roots.push(i),
            }
        }
        fn build(
            i: usize,
            all: &[&SpanRecord],
            children: &BTreeMap<usize, Vec<usize>>,
        ) -> SpanTree {
            SpanTree {
                record: all[i].clone(),
                children: children
                    .get(&i)
                    .map(|c| c.iter().map(|&j| build(j, all, children)).collect())
                    .unwrap_or_default(),
            }
        }
        roots
            .into_iter()
            .map(|i| build(i, &all, &children))
            .collect()
    }

    /// All trees belonging to `trace_id`, from [`assemble`](Self::assemble)d
    /// stores.
    pub fn for_trace(stores: &[&[SpanRecord]], trace_id: u64) -> Vec<SpanTree> {
        Self::assemble(stores)
            .into_iter()
            .filter(|t| t.record.trace_id == trace_id)
            .collect()
    }

    /// Total spans in this tree.
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(SpanTree::len).sum::<usize>()
    }

    /// Whether the tree is a lone root (no children).
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Greatest depth (a lone root has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(SpanTree::depth).max().unwrap_or(0)
    }

    /// Render as an indented ASCII tree for human consumption.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let r = &self.record;
        out.push_str(&format!(
            "{:indent$}{} @ site {} t={:.1}s [{}]{}{}\n",
            "",
            r.name,
            r.site,
            r.t_s,
            r.span_id,
            if r.detail.is_empty() { "" } else { " — " },
            r.detail,
            indent = indent * 2
        ));
        for c in &self.children {
            c.render_into(out, indent + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, site: u32, t: f64, name: &str) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_span: parent,
            name: name.to_string(),
            site,
            t_s: t,
            detail: String::new(),
        }
    }

    #[test]
    fn ids_are_unique_across_sites_and_deterministic() {
        let mut a = SpanStore::new(0, 8);
        let mut b = SpanStore::new(1, 8);
        let ia: Vec<u64> = (0..4).map(|_| a.alloc_id()).collect();
        let ib: Vec<u64> = (0..4).map(|_| b.alloc_id()).collect();
        assert!(
            ia.iter().all(|i| !ib.contains(i)),
            "no cross-site collision"
        );
        let mut a2 = SpanStore::new(0, 8);
        let ia2: Vec<u64> = (0..4).map(|_| a2.alloc_id()).collect();
        assert_eq!(ia, ia2, "same site, same sequence");
    }

    #[test]
    fn store_bounds_and_counts_evictions() {
        let mut s = SpanStore::new(0, 2);
        for i in 0..5 {
            s.push(span(1, i + 10, 0, 0, i as f64, "x"));
        }
        assert_eq!(s.spans().len(), 2);
        assert_eq!(s.dropped(), 3);
        assert_eq!(s.spans()[0].span_id, 13, "oldest evicted first");
    }

    #[test]
    fn assemble_merges_cross_site_stores() {
        // Trace 1: root at site 0, a gossip hop lands its child at site 1,
        // whose refresh chain continues there.
        let site0 = vec![
            span(1, 100, 0, 0, 0.0, "rms.report"),
            span(1, 101, 100, 0, 1.0, "uss.publish"),
        ];
        let site1 = vec![
            span(1, 200, 101, 1, 2.0, "gossip.merge"),
            span(1, 201, 200, 1, 3.0, "fcs.refresh"),
        ];
        let trees = SpanTree::assemble(&[&site0, &site1]);
        assert_eq!(trees.len(), 1);
        let t = &trees[0];
        assert_eq!(t.record.name, "rms.report");
        assert_eq!(t.len(), 4);
        assert_eq!(t.depth(), 4);
        assert_eq!(t.children[0].children[0].record.site, 1);
        let text = t.render();
        assert!(text.contains("gossip.merge @ site 1"));
    }

    #[test]
    fn missing_parent_becomes_extra_root() {
        let orphan = vec![span(7, 300, 999, 2, 5.0, "ums.refresh")];
        let trees = SpanTree::assemble(&[&orphan]);
        assert_eq!(trees.len(), 1, "orphan still renders as a root");
        assert!(trees[0].is_empty());
    }

    #[test]
    fn for_trace_filters() {
        let s = vec![span(1, 10, 0, 0, 0.0, "a"), span(2, 20, 0, 0, 0.0, "b")];
        let t = SpanTree::for_trace(&[&s], 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].record.name, "b");
    }

    #[test]
    fn full_config_samples_everything() {
        let c = SpanConfig::full(3);
        assert_eq!(c.sample_every, 1);
        assert_eq!(c.site, 3);
        assert!(c.capture_provenance);
        assert_eq!(SpanConfig::default().sample_every, 0, "default stays inert");
    }
}
