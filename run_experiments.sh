#!/bin/sh
# Regenerate every table and figure of the paper (full fidelity).
# Outputs land in results/.
set -e
mkdir -p results
for exp in table1 table2 table3 fig4 fig5 fig6 fig7 \
           fig10_baseline fig11_update_delay fig12_nonoptimal \
           partial_participation fig13_bursty throughput production \
           ablation_distance_weight ablation_decay ablation_projection \
           ablation_dispatch ablation_cache_ttl \
           hierarchy_isolation local_autonomy; do
    echo "== $exp"
    cargo run --release -q -p aequus-bench --bin "$exp" > "results/$exp.txt" 2>"results/$exp.log"
done
echo "all experiments done"
