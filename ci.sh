#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full test suite.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
# Tier-1 tests under a 3-seed matrix: AEQUUS_TEST_SEED shifts every seeded
# suite — the chaos fault matrix's base seed (including its durability
# axis) and all property-test case generation, the store's WAL
# truncation/bit-flip properties among them — so the gate covers three
# seed families per run.
for seed in 1 2 3; do
  AEQUUS_TEST_SEED="$seed" cargo test -q --workspace
done

# Docs must build warning-free for the first-party crates (vendored shims
# are exempt — they mirror external APIs we don't own).
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
  -p aequus -p aequus-telemetry -p aequus-core -p aequus-services \
  -p aequus-rms -p aequus-sim -p aequus-workload -p aequus-stats \
  -p aequus-store -p aequus-bench

# Telemetry overhead smoke check: the instrumented dispatch hot path must
# stay within 5% of its baseline in all three modes — metrics-only vs
# disabled, and tracing+provenance enabled-but-unsampled / full-capture vs
# metrics-only.
cargo run -q --release -p aequus-bench --bin telemetry_overhead -- --check

# Continuous-profiler overhead gate: a profiled whole-simulation must stay
# within 5% of the telemetry-only baseline in Counters mode (zero clock
# reads) and 10% in Full mode (wall timers + bounded span ring).
cargo run -q --release -p aequus-bench --bin profiler_overhead -- --check

# Scale-out gossip gate (smoke-sized): every overlay topology and wire
# encoding must end with views within 1e-9 of the full-mesh baseline's,
# every point must converge inside the horizon, and the Delta codec must
# cut full-mesh bytes-on-wire by the shape's gated factor (the 3x headline
# gate runs at the full 100k-user x 32-site shape via `gossip_sweep`).
cargo run -q --release -p aequus-bench --bin gossip_sweep -- --check

# Fairness-health gate: the fault-free chaos grid must fire zero alerts,
# the 30%-drop + outage run must fire a staleness alert and resolve it
# after recovery, the health report and alert stream must be
# byte-identical across worker counts, and the SLO engine + health map
# must cost <= 5% sim wall time on a production-density run.
cargo run -q --release -p aequus-bench --bin aequus-health -- --check

# Backfill dispatch gate (smoke-sized): every dispatch order x projection
# cell must drain the bursty mixed-width trace with finite fairness error,
# EASY/SAF utilization must not fall below FIFO's, FIFO and EASY must be
# bit-identical on the single-core baseline, the learned predictors must
# beat request echo on mean |rel err| with the prediction-accuracy
# telemetry counter live, and the scheduler hot path must hold its budget
# (sub-us pick_next at 10k-deep queues, plan-scan growth well under O(n^2)).
cargo run -q --release -p aequus-bench --bin backfill_sweep -- --check

# Benchmark snapshot + regression gate: writes BENCH_PR10.json (and its
# PROFILE_PR10.json attribution sidecar) and compares against the most
# recent previous BENCH_*.json within tolerance (passes with a note when
# none exists yet). Thread-scaling keys skip on hosts with < 8 cores.
cargo run -q --release -p aequus-bench --bin bench_snapshot -- 1500 --check

# Regression differ: the attribution selftest injects a stall at the epoch
# barrier and must see it blamed on barrier.wait, then the real diff
# re-compares the two newest snapshots and names the profiled stage whose
# wall share grew most whenever a wall-clock key regresses.
cargo run -q --release -p aequus-bench --bin bench_diff -- --selftest
cargo run -q --release -p aequus-bench --bin bench_diff

# Crash-recovery gate: WAL replay must reconverge the crashed site's views
# strictly earlier than surcharged snapshot-only catch-up on every seed.
cargo run -q --release -p aequus-bench --bin recovery_sweep

# Sharded-engine gate (smoke-sized): every worker count must replay the
# serial run seed-for-seed, and the continuous profiler's folded stacks
# must be byte-identical across worker counts; on hosts with >= 8 cores
# the 4x wall-clock speedup target is enforced too (reported but skipped
# on smaller hosts — determinism is hardware-independent, speedup is not).
# Artifacts: SCALE_TRACE.json (Chrome trace) + SCALE_PROFILE.folded.
cargo run -q --release -p aequus-bench --bin scale_sweep -- --check
