#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full test suite.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q --workspace
