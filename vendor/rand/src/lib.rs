//! Offline shim for `rand` 0.8: the API subset this workspace uses, backed
//! by a deterministic xoshiro256++ generator seeded via splitmix64.
//!
//! Coverage: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `gen::<f64>()`, `gen::<u64>()`, `gen::<bool>()`, `gen_bool`, and
//! `gen_range` over half-open and inclusive numeric ranges. Streams are
//! deterministic per seed (all workspace consumers seed explicitly) but do
//! NOT match upstream `rand` byte-for-byte — statistical tests in the
//! workspace only assert tolerances, never exact upstream streams.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit word stream.
pub trait RngCore {
    /// Next word of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from the full word stream (the `Standard`
/// distribution of upstream rand).
pub trait StandardSample {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (`SampleRange` of upstream rand).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer draw in `[0, span)` via 128-bit multiply-shift.
fn index_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "empty integer range");
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + index_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + index_below(rng, span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = f64::sample_standard(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let u = f64::sample_standard(rng) as $t;
                start + u * (end - start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// The user-facing sampling trait (upstream `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::sample_standard(self) < p
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (upstream `rand::SeedableRng`, u64-seed subset).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for upstream StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start in the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_uniformity() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let i = rng.gen_range(0usize..10);
            counts[i] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
        for _ in 0..1000 {
            let x = rng.gen_range(5.0..6.0f64);
            assert!((5.0..6.0).contains(&x));
            let y = rng.gen_range(3u64..=5);
            assert!((3..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn works_through_unsized_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0.0..1.0).contains(&draw(&mut rng)));
    }
}
