//! Offline shim for `serde_derive`: the derive macros parse nothing and emit
//! nothing. The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! a forward-compatibility marker — no code path serializes anything yet, so
//! an empty expansion is sufficient and keeps the build network-free.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
