//! Offline shim for `serde`: marker traits only.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types as a
//! forward-compatibility marker but never serializes through them (no
//! `#[serde(...)]` attributes, no trait-bounded consumers). This shim keeps
//! the workspace resolvable without network access; swapping back to the
//! real crate is a one-line change in the root `Cargo.toml`.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
