//! Offline shim for `proptest`: a deterministic property-testing harness
//! covering the API subset this workspace uses.
//!
//! Supported: the `proptest!` macro (with `#![proptest_config(...)]`),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, `Strategy` with
//! `prop_map` / `prop_flat_map`, range strategies over the numeric
//! primitives, tuple strategies up to arity 8, and
//! `proptest::collection::vec` with fixed or ranged lengths.
//!
//! Differences from upstream: no shrinking (failures report the case seed,
//! which reproduces deterministically) and no persisted failure files.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then a follow-on strategy from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_flat_map` adapter.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A constant strategy (upstream `Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// Uniform in `[start, end)`.
        Span(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Span(r.start, r.end)
        }
    }

    /// Strategy producing `Vec`s of `element` draws.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// comes from `size` (a `usize` or `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = match self.size {
                SizeRange::Fixed(n) => n,
                SizeRange::Span(a, b) => {
                    assert!(a < b, "collection::vec: empty size range");
                    rng.gen_range(a..b)
                }
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case execution: configuration and error plumbing.

    /// How a single generated case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed — the property is violated.
        Fail(String),
        /// The inputs were rejected by `prop_assume!`.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Harness configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Abort if this many consecutive rejections occur with no progress.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Run `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Stable per-test seed so failures reproduce across runs (FNV-1a of the
    /// test path). `AEQUUS_TEST_SEED` shifts the whole seed family, letting
    /// CI sweep a matrix of generated cases without editing any suite; a
    /// failure still reproduces by re-running with the same value.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Some(shift) = std::env::var("AEQUUS_TEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            h ^= shift.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        h
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[doc(hidden)]
pub mod __rng {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng =
                <$crate::__rng::StdRng as $crate::__rng::SeedableRng>::seed_from_u64(seed);
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case_index: u32 = 0;
            while passed < config.cases {
                case_index += 1;
                let ($($pat,)+) =
                    ($($crate::strategy::Strategy::generate(&($strat), &mut rng),)+);
                let result: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match result {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.max_global_rejects,
                            "proptest '{}': too many prop_assume! rejections ({rejected})",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case #{case_index} (seed {seed:#x}): {msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
    )*};
}

/// Assert inside a property body; failure fails the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Reject the current case (does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 0.0..1.0f64, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn tuples_and_vecs((a, b) in (0u8..3, 1.0..2.0f64), v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(a < 3);
            prop_assert!((1.0..2.0).contains(&b));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn map_and_flat_map(v in (2usize..5).prop_flat_map(|n| crate::collection::vec(0.0..1.0f64, n).prop_map(move |xs| (n, xs)))) {
            let (n, xs) = v;
            prop_assert_eq!(n, xs.len());
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use rand::SeedableRng;
        let strat = crate::collection::vec(0.0..1.0f64, 3usize);
        let seed = crate::test_runner::seed_for("x");
        let a = strat.generate(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let b = strat.generate(&mut rand::rngs::StdRng::seed_from_u64(seed));
        assert_eq!(a, b);
    }
}
