//! Integrating a *custom* scheduler with Aequus through the same seam SLURM
//! and Maui use (§III-A): the `FairshareSource` trait — fetch a global
//! fairshare factor, report usage on completion, resolve identities.
//!
//! This example builds a toy FIFO-with-fairshare-boost scheduler in ~40
//! lines against a live `AequusSite`, demonstrating the libaequus call
//! pattern without any of the stock RMS front ends.
//!
//! ```sh
//! cargo run --release --example custom_integration
//! ```

use aequus::core::fairshare::FairshareConfig;
use aequus::core::ids::{JobId, SiteId};
use aequus::core::policy::flat_policy;
use aequus::core::projection::ProjectionKind;
use aequus::core::usage::UsageRecord;
use aequus::core::{GridUser, SystemUser};
use aequus::rms::FairshareSource;
use aequus::services::{AequusSite, ParticipationMode, ServiceTimings};

struct ToyJob {
    id: u64,
    user: SystemUser,
    duration_s: f64,
}

fn main() {
    // One-site Aequus stack with two users at 50/50 target shares.
    let mut site = AequusSite::new(
        SiteId(0),
        flat_policy(&[("alice", 0.5), ("bob", 0.5)]).unwrap(),
        FairshareConfig::default(),
        ProjectionKind::Percental,
        ServiceTimings {
            report_delay_s: 0.0,
            uss_publish_interval_s: 10.0,
            ums_refresh_interval_s: 10.0,
            fcs_refresh_interval_s: 10.0,
            lib_cache_ttl_s: 5.0,
            lib_identity_ttl_s: 60.0,
            exchange_latency_s: 1.0,
        },
        ParticipationMode::Full,
        60.0,
    );
    site.irs
        .store_mapping(SystemUser::new("sys-alice"), GridUser::new("alice"));
    site.irs
        .store_mapping(SystemUser::new("sys-bob"), GridUser::new("bob"));

    // Alice hammers the machine; Bob submits occasionally.
    let mut queue: Vec<ToyJob> = (0..20)
        .map(|i| ToyJob {
            id: i,
            user: SystemUser::new(if i % 5 == 0 { "sys-bob" } else { "sys-alice" }),
            duration_s: 100.0,
        })
        .collect();

    let mut now = 0.0_f64;
    println!(
        "{:>8} {:>6} {:>8} {:>10} {:>10}",
        "t(s)", "job", "user", "fs-factor", "decision"
    );
    while !queue.is_empty() {
        site.tick(now);
        // The custom scheduler's priority pass: one libaequus call per user.
        let mut best: Option<(usize, f64)> = None;
        for (idx, job) in queue.iter().enumerate() {
            let grid = site
                .resolve_identity(&job.user, now)
                .expect("identity mapped");
            let factor = site.fairshare_factor(&grid, now);
            if best.is_none_or(|(_, f)| factor > f) {
                best = Some((idx, factor));
            }
        }
        let (idx, factor) = best.expect("queue non-empty");
        let job = queue.remove(idx);
        let grid = site.resolve_identity(&job.user, now).unwrap();
        println!(
            "{:>8.0} {:>6} {:>8} {:>10.4} {:>10}",
            now, job.id, grid, factor, "run"
        );
        // "Execute" and report usage back through the completion seam.
        let end = now + job.duration_s;
        site.report_usage(
            UsageRecord {
                job: JobId(job.id),
                user: grid,
                site: SiteId(0),
                cores: 1,
                start_s: now,
                end_s: end,
            },
            end,
        );
        now = end;
    }
    println!("\nBob's jobs jump the queue whenever Alice over-consumes —");
    println!("global fairshare through three calls: resolve, factor, report.");
}
