//! Quickstart: run a small grid with global fairshare and watch priorities
//! converge.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aequus::sim::{GridScenario, GridSimulation};
use aequus::workload::users::baseline_policy_shares;
use aequus::workload::{test_trace, TestTraceConfig};

fn main() {
    // The paper's baseline: six clusters × 40 virtual hosts, percental
    // projection, fairshare-only priority, policy = historical shares.
    let policy = baseline_policy_shares();
    let scenario = GridScenario::national_testbed(&policy, 42);

    // A compressed test trace: 6 hours, 43,200 jobs, 95% load — the paper's
    // exact test shape (runs in a couple of seconds).
    let trace = test_trace(&TestTraceConfig::default());
    println!(
        "trace: {} jobs, {:.0} core-hours of work",
        trace.len(),
        trace.total_work() / 3600.0
    );

    let result = GridSimulation::new(scenario).run(&trace, 1800.0);

    println!(
        "completed {}/{} jobs, mean utilization {:.1}%",
        result.total_completed(),
        result.total_submitted(),
        100.0 * result.mean_utilization()
    );
    println!("\n t(min)   U65-share  U30-share  U3-share  Uoth-share  | U65-prio");
    for s in result.metrics.samples().iter().step_by(5) {
        let share = |u: &str| s.users.get(u).map(|x| x.usage_share).unwrap_or(0.0);
        let prio = |u: &str| s.users.get(u).map(|x| x.priority).unwrap_or(0.0);
        println!(
            "{:7.1}   {:9.3}  {:9.3}  {:8.3}  {:10.3}  | {:8.3}",
            s.t_s / 60.0,
            share("U65"),
            share("U30"),
            share("U3"),
            share("Uoth"),
            prio("U65"),
        );
    }
    match result.metrics.convergence_time(0.12, 1800.0) {
        Some(t) => println!(
            "\nbalance (deviation < 0.12, 30 min dwell) reached at {:.0} min",
            t / 60.0
        ),
        None => println!("\nfinal deviation: {:.3}", result.metrics.final_deviation()),
    }
}
