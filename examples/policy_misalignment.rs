//! The §IV-A-3 non-optimal policy test: target shares 70/20/8/2 while the
//! workload's actual usage mix stays 65.25/30.49/2.86/1.40 — "as may often
//! be the case in realistic usage scenarios". The system approaches balance
//! where job availability allows and drifts where it cannot.
//!
//! ```sh
//! cargo run --release --example policy_misalignment
//! ```

use aequus::sim::{GridScenario, GridSimulation};
use aequus::workload::users::nonoptimal_policy_shares;
use aequus::workload::{test_trace, TestTraceConfig};

fn main() {
    let scenario = GridScenario::national_testbed(&nonoptimal_policy_shares(), 42);
    let trace = test_trace(&TestTraceConfig::default());
    eprintln!("simulating with misaligned policy (70/20/8/2)...");
    let result = GridSimulation::new(scenario).run(&trace, 1800.0);

    println!("# Non-optimal policy test (Figure 12)");
    println!("targets: U65 .70, U30 .20, U3 .08, Uoth .02 (actual mix: .65/.30/.03/.01)");
    println!(
        "{:>7} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "t(min)", "U65", "U30", "U3", "Uoth", "deviation"
    );
    let samples = result.metrics.samples();
    for s in samples.iter().step_by(10) {
        let sh = |u: &str| s.users.get(u).map(|x| x.usage_share).unwrap_or(0.0);
        let dev = [("U65", 0.70), ("U30", 0.20), ("U3", 0.08), ("Uoth", 0.02)]
            .iter()
            .map(|(u, t)| (sh(u) - t).abs())
            .fold(0.0f64, f64::max);
        println!(
            "{:>7.0} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>10.3}",
            s.t_s / 60.0,
            sh("U65"),
            sh("U30"),
            sh("U3"),
            sh("Uoth"),
            dev
        );
    }
    let windows: Vec<String> = result
        .metrics
        .balance_windows(0.10)
        .iter()
        .filter(|(a, b)| b - a >= 300.0)
        .map(|(a, b)| format!("[{:.0},{:.0}] min", a / 60.0, b / 60.0))
        .collect();
    println!(
        "\nnear-balance windows: {} (paper: close to balance in the 120-180 min range)",
        if windows.is_empty() {
            "none".to_string()
        } else {
            windows.join(", ")
        }
    );
}
