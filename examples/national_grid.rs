//! The paper's national test bed at full fidelity: six clusters × 40 virtual
//! hosts (10% of the Swedish national grid), 43,200 jobs over six hours at
//! 95% load, policy = historical usage shares.
//!
//! ```sh
//! cargo run --release --example national_grid
//! ```

use aequus::sim::{GridScenario, GridSimulation};
use aequus::workload::users::baseline_policy_shares;
use aequus::workload::{test_trace, TestTraceConfig};

fn main() {
    let scenario = GridScenario::national_testbed(&baseline_policy_shares(), 42);
    let trace = test_trace(&TestTraceConfig::default()); // 43,200 jobs / 6 h / 95%
    eprintln!(
        "simulating {} jobs on {} cores across {} clusters...",
        trace.len(),
        scenario.total_cores(),
        scenario.clusters.len()
    );
    let result = GridSimulation::new(scenario).run(&trace, 1800.0);

    println!("# National grid baseline");
    println!(
        "completed {}/{} jobs; mean utilization {:.1}%",
        result.total_completed(),
        result.total_submitted(),
        100.0 * result.mean_utilization()
    );
    println!(
        "sustained submission rate {:.0} jobs/min, peak {} jobs/min",
        result.metrics.sustained_submission_rate(),
        result.metrics.peak_submission_rate()
    );
    println!("\nusage shares over time (targets: .6525 .3049 .0286 .0140):");
    println!(
        "{:>7} {:>8} {:>8} {:>8} {:>8}",
        "t(min)", "U65", "U30", "U3", "Uoth"
    );
    for s in result.metrics.samples().iter().step_by(15) {
        let sh = |u: &str| s.users.get(u).map(|x| x.usage_share).unwrap_or(0.0);
        println!(
            "{:>7.0} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            s.t_s / 60.0,
            sh("U65"),
            sh("U30"),
            sh("U3"),
            sh("Uoth")
        );
    }
    let windows: Vec<String> = result
        .metrics
        .balance_windows(0.10)
        .iter()
        .filter(|(a, b)| b - a >= 600.0)
        .map(|(a, b)| format!("[{:.0},{:.0}] min", a / 60.0, b / 60.0))
        .collect();
    println!(
        "\nbalance windows (max deviation < 0.10): {}",
        windows.join(", ")
    );
}
