//! The §IV-A-4 partial-participation scenario: one site only reads global
//! usage data, another contributes but prioritizes on local data only.
//!
//! ```sh
//! cargo run --release --example partial_participation
//! ```

use aequus::services::ParticipationMode;
use aequus::sim::{GridScenario, GridSimulation};
use aequus::workload::users::baseline_policy_shares;
use aequus::workload::{test_trace, TestTraceConfig};

fn main() {
    let mut scenario = GridScenario::national_testbed(&baseline_policy_shares(), 42);
    scenario.clusters[1].participation = ParticipationMode::ReadOnly;
    scenario.clusters[2].participation = ParticipationMode::LocalOnly;
    let trace = test_trace(&TestTraceConfig::default());
    eprintln!("simulating with partial participation...");
    let result = GridSimulation::new(scenario).run(&trace, 1800.0);

    println!("# Partial cluster participation");
    println!("roles: sites 0,3,4,5 Full | site 1 ReadOnly | site 2 LocalOnly\n");
    println!("U65 priority per site over time:");
    print!("{:>7}", "t(min)");
    for site in 0..6 {
        print!(" {:>8}", format!("site{site}"));
    }
    println!();
    for s in result.metrics.samples().iter().step_by(15) {
        print!("{:>7.0}", s.t_s / 60.0);
        for site in 0..6 {
            let p = s
                .per_site_priority
                .get(site)
                .and_then(|m| m.get("U65"))
                .copied()
                .unwrap_or(f64::NAN);
            print!(" {:>8.3}", p);
        }
        println!();
    }
    println!("\nexpected: site 1 (ReadOnly) tracks the full sites;");
    println!("site 2 (LocalOnly) converges to the same levels, slower and noisier.");
}
