//! The §IV-A-5 bursty usage test: U3's job share raised to 45.5% with its
//! burst shifted to one third of the run; the system balances while U3
//! idles (its unused allocation redistributed), then readjusts after the
//! burst. U3's priority peaks at the documented bound 0.5·(1+0.12) = 0.56.
//!
//! ```sh
//! cargo run --release --example bursty_usage
//! ```

use aequus::sim::{GridScenario, GridSimulation};
use aequus::workload::users::bursty_usage_shares;
use aequus::workload::{test_trace, TestTraceConfig};

fn main() {
    let policy: Vec<(&str, f64)> = bursty_usage_shares()
        .iter()
        .map(|(u, s)| (u.name(), *s))
        .collect();
    let scenario = GridScenario::national_testbed(&policy, 42);
    let trace = test_trace(&TestTraceConfig::bursty(42));
    eprintln!("simulating bursty workload ({} jobs)...", trace.len());
    let result = GridSimulation::new(scenario).run(&trace, 1800.0);

    println!("# Bursty usage test (Figure 13)");
    println!(
        "{:>7} {:>9} {:>9} {:>9} | {:>9} {:>9}",
        "t(min)", "U65share", "U30share", "U3share", "U3prio", "U65prio"
    );
    for s in result.metrics.samples().iter().step_by(10) {
        let sh = |u: &str| s.users.get(u).map(|x| x.usage_share).unwrap_or(0.0);
        let pr = |u: &str| s.users.get(u).map(|x| x.priority).unwrap_or(0.0);
        println!(
            "{:>7.0} {:>9.3} {:>9.3} {:>9.3} | {:>9.3} {:>9.3}",
            s.t_s / 60.0,
            sh("U65"),
            sh("U30"),
            sh("U3"),
            pr("U3"),
            pr("U65")
        );
    }
    let max_u3 = result
        .metrics
        .priority_series("U3")
        .iter()
        .map(|(_, p)| *p)
        .fold(f64::NEG_INFINITY, f64::max);
    println!("\nU3 peak priority {max_u3:.3} — paper's bound: 0.5*(1 + 0.12) = 0.56");
}
