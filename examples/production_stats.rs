//! Production-deployment statistics (§IV): Aequus beside a SLURM-like
//! scheduler on an HPC2N-shaped cluster — 68 nodes × dual quad-core Xeons =
//! 544 cores, ~40,000 jobs/month, multi-month horizon. The claim under test
//! is stability: bounded queues, steady utilization, no pipeline stalls.
//!
//! ```sh
//! cargo run --release --example production_stats
//! ```

use aequus::core::DecayPolicy;
use aequus::sim::{GridScenario, GridSimulation};
use aequus::workload::users::baseline_policy_shares;
use aequus::workload::{test_trace, TestTraceConfig};

fn main() {
    let months = 3;
    let horizon_s = months as f64 * 30.0 * 86400.0;
    let mut scenario = GridScenario::production_cluster(&baseline_policy_shares(), 42);
    scenario.tick_interval_s = 60.0;
    scenario.sample_interval_s = 3600.0;
    scenario.usage_slot_s = 3600.0;
    scenario.fairshare.decay = DecayPolicy::Exponential {
        half_life_s: 7.0 * 86400.0,
    };
    let trace = test_trace(&TestTraceConfig {
        total_jobs: 40_000 * months,
        test_len_s: horizon_s,
        load_target: 0.85,
        capacity_cores: scenario.total_cores(),
        ..Default::default()
    });
    eprintln!(
        "simulating {} jobs over {months} months on 544 cores...",
        trace.len()
    );
    let result = GridSimulation::new(scenario).run(&trace, 86400.0);

    println!("# Production statistics (HPC2N shape)");
    println!(
        "jobs/month: {:.0} (paper: ~40,000)",
        result.total_completed() as f64 / months as f64
    );
    println!(
        "mean utilization: {:.1}%",
        100.0 * result.mean_utilization()
    );
    let max_pending = result
        .metrics
        .samples()
        .iter()
        .map(|s| s.pending)
        .max()
        .unwrap_or(0);
    println!("peak queue depth: {max_pending} jobs (stability: bounded)");
    println!(
        "mean queue wait: {:.1} min",
        result.cluster_stats[0].mean_wait_s() / 60.0
    );
    println!(
        "completed: {}/{}",
        result.total_completed(),
        result.total_submitted()
    );
}
